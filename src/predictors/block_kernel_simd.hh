/**
 * @file
 * The phase-split block replay kernels: vectorized index
 * computation, software prefetch, and a fed serial resolve.
 *
 * The fused block kernel (block_kernel.hh) interleaves index math,
 * counter access and history updates per branch. This header splits
 * each block into phases:
 *
 *  0. Compaction — one branchless pass over the records lifts the
 *     conditional branches into structure-of-arrays form (address,
 *     pre-branch history, outcome) in the session's ReplayScratch,
 *     advancing a speculative history from the in-block taken bits.
 *     History is outcome-determined — it advances on record bits,
 *     never on predictions — so within one replayBlock() call the
 *     speculation is exact, not a guess.
 *  1. Index fill — the per-record table indices for the whole block
 *     are materialized with AVX2 kernels (four 64-bit lanes per
 *     step) or their bit-identical scalar fallbacks, which also
 *     handle the non-multiple-of-4 tail.
 *  2. Prefetch — before each ~64-record sub-batch resolves, the
 *     next sub-batch's counter lines are requested with
 *     __builtin_prefetch, hiding table-lookup latency behind the
 *     current sub-batch's ALU work.
 *  3. Resolve — the serial pass consuming precomputed indices:
 *     counter read, vote, policy update, misprediction tally.
 *     Checked builds recompute each index from the stored history
 *     through the scalar index function and repair (prefer the
 *     recomputed index) on divergence — defensive, since phase 0's
 *     speculation is exact by construction.
 *
 * Dispatch: predictors enter these kernels only when the resolved
 * SimdMode (support/simd.hh) is a vector mode and the table geometry
 * fits 32-bit indices; otherwise they run the fused block kernel,
 * which stays the reference. Byte-identity between the two is pinned
 * by test_predictor_contract for every registered scheme.
 *
 * Intrinsics policy (enforced by bp_lint's simd-isolation rule):
 * <immintrin.h> and the _mm* intrinsics appear only in *_simd files,
 * inside BPRED_HAVE_AVX2, in functions carrying the avx2 target
 * attribute.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "predictors/info_vector.hh"
#include "predictors/predictor.hh"
#include "predictors/replay_scratch.hh"
#include "support/logging.hh"
#include "support/sat_counter.hh"
#include "trace/branch_record.hh"

#if BPRED_HAVE_AVX2
#include <immintrin.h>
#endif

namespace bpred
{

/** Records per resolve sub-batch; phase 2 prefetches one ahead. */
constexpr std::size_t simdSubBatch = 64;

/** Prefetch distance (in conditionals) used by record-walking
 * resolvers that cannot batch (the hybrid's component walk). */
constexpr std::size_t simdPrefetchDistance = 64;

/**
 * Records per phase tile: the phases run tile-by-tile inside each
 * replay block so the staging arrays a tile touches (~21 KiB at
 * 1024 records) stay L1-resident between the compact, fill and
 * resolve passes instead of making L2 round trips per phase.
 * History threads through tile boundaries, so tiling is invisible
 * to results.
 */
constexpr std::size_t simdTileRecords = 1024;

/**
 * Counter-table footprint (bytes) above which the resolve pass
 * prefetches the next sub-batch's counter lines. Smaller tables are
 * L1-resident under replay, where a per-record prefetch instruction
 * is pure overhead (~10% of the resolve pass); half of a typical
 * 32 KiB L1D is where misses start to appear in practice.
 */
constexpr u64 simdCounterPrefetchMinBytes = 16 * 1024;

/** True when a table of @p table_bytes warrants phase-2 prefetch. */
constexpr bool
simdWantsCounterPrefetch(u64 table_bytes)
{
    return table_bytes > simdCounterPrefetchMinBytes;
}

/**
 * The saturating-counter transition function as a nibble LUT held
 * in one register: bits [(value*2 + taken)*4, +4) hold the next
 * counter value. Valid for counter widths up to 3 bits (max <= 7 —
 * 8 states x 2 outcomes x 4 bits = 64); the resolve loops fall back
 * to branchless arithmetic for wider counters. Replaces the
 * two-compare update chain with one shift+mask on the hot path.
 */
inline u64
counterTransitionLut(u8 max)
{
    u64 lut = 0;
    for (unsigned value = 0; value <= max; ++value) {
        for (unsigned taken = 0; taken < 2; ++taken) {
            const unsigned next = taken
                ? (value < max ? value + 1 : value)
                : (value > 0 ? value - 1 : 0);
            lut |= u64(next) << ((value * 2 + taken) * 4);
        }
    }
    return lut;
}

/**
 * True when @p index_bits fits the u32 index arrays with headroom
 * for the vector kernels' 64-bit lane math. Wider tables (never seen
 * in practice — 2^31 two-bit counters is half a GiB per table) use
 * the fused block kernel.
 */
constexpr bool
simdIndexWidthOk(unsigned index_bits)
{
    return index_bits >= 1 && index_bits <= 31;
}

/**
 * Phase 0: compact the conditional branches of @p records into the
 * scratch SoA arrays (address, pre-branch history, outcome) with a
 * branchless cursor, advancing the history register exactly as the
 * fused kernel would (conditionals shift in their outcome,
 * unconditionals shift in taken). Returns the number of
 * conditionals; the post-block history lands in @p history_out.
 */
namespace detail
{

/**
 * Stage one record into the SoA arrays. The taken/conditional pair
 * is fetched as one 16-bit word (memcpy keeps it strict-aliasing
 * clean and compiles to a single load) instead of two byte loads.
 * Unconditionally staging and advancing the cursor by the
 * conditional bit keeps the loop free of data-dependent branches:
 * an unconditional's slot is simply overwritten by the next
 * conditional.
 */
inline void
stageRecord(const BranchRecord &record, u64 *pc, u64 *history,
            u8 *taken, std::size_t &cursor, u64 &h)
{
    static_assert(sizeof(BranchRecord) >=
                  offsetof(BranchRecord, taken) + 2);
    u16 flags;
    std::memcpy(&flags, &record.taken, sizeof(flags));
    const u64 taken_bit = flags & 1;
    const u64 conditional_bit = (flags >> 8) & 1;
    pc[cursor] = record.pc;
    history[cursor] = h;
    taken[cursor] = u8(taken_bit);
    cursor += std::size_t(conditional_bit);
    h = (h << 1) | (taken_bit | (conditional_bit ^ 1));
}

} // namespace detail

inline std::size_t
compactConditionals(const BranchRecord *records, std::size_t count,
                    u64 history_in, ReplayScratch &scratch,
                    u64 *history_out)
{
    u64 *pc = scratch.pc.data();
    u64 *history = scratch.history.data();
    u8 *taken = scratch.taken.data();
    u64 h = history_in;
    std::size_t cursor = 0;
    std::size_t i = 0;
    // Unrolled by 4 (the compiler does not unroll at -O2, and the
    // loop-carried work per record is tiny), with the record stream
    // prefetched half a kilobyte ahead: replay streams the trace
    // from L3/memory exactly once, and this pass is where that cost
    // lands.
    for (; i + 4 <= count; i += 4) {
        __builtin_prefetch(records + i + 32, 0);
        detail::stageRecord(records[i], pc, history, taken, cursor, h);
        detail::stageRecord(records[i + 1], pc, history, taken,
                            cursor, h);
        detail::stageRecord(records[i + 2], pc, history, taken,
                            cursor, h);
        detail::stageRecord(records[i + 3], pc, history, taken,
                            cursor, h);
    }
    for (; i < count; ++i) {
        detail::stageRecord(records[i], pc, history, taken, cursor, h);
    }
    *history_out = h;
    return cursor;
}

/**
 * Drive the phase-split passes tile-by-tile over one replay block:
 * compact a tile of records into @p scratch, then hand the tile's
 * conditional count to @p fill_and_resolve (which runs the index
 * fill and resolve phases out of the same scratch). History threads
 * through the tiles; the post-block value is returned. @p index_sets
 * is the number of per-bank index arrays ensure()d per tile.
 */
template <typename FillAndResolve>
inline u64
replayTiled(const BranchRecord *records, std::size_t count,
            u64 history_in, ReplayScratch &scratch,
            unsigned index_sets, FillAndResolve &&fill_and_resolve)
{
    u64 h = history_in;
    for (std::size_t at = 0; at < count; at += simdTileRecords) {
        const std::size_t n =
            std::min(simdTileRecords, count - at);
        scratch.ensure(n, index_sets);
        const std::size_t conditionals =
            compactConditionals(records + at, n, h, scratch, &h);
        fill_and_resolve(conditionals);
    }
    return h;
}

#if BPRED_HAVE_AVX2

/**
 * Store four sub-2^31 u64 lanes of @p lanes as four consecutive
 * u32s at @p out.
 */
[[gnu::target("avx2")]] inline void
simdStoreIndices(u32 *out, __m256i lanes)
{
    const __m256i packed = _mm256_permutevar8x32_epi32(
        lanes, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                     _mm256_castsi256_si128(packed));
}

/** addressIndex() over four lanes at a time. */
[[gnu::target("avx2")]] inline void
fillAddressIndicesAvx2(const u64 *pc, std::size_t n,
                       unsigned index_bits, u32 *out)
{
    const __m256i index_mask =
        _mm256_set1_epi64x(i64(mask(index_bits)));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i address = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(pc + i));
        simdStoreIndices(
            out + i,
            _mm256_and_si256(_mm256_srli_epi64(address, 2),
                             index_mask));
    }
    for (; i < n; ++i) {
        out[i] = static_cast<u32>(
            u64(addressIndex(pc[i], index_bits)));
    }
}

/**
 * gshareIndex() over four lanes at a time. The short-history
 * alignment shift and the xorFold of a long history are both uniform
 * across the block (the widths are configuration), so each variant
 * is a branch-free lane loop; the fold runs the fixed
 * ceil(history_bits / index_bits) iterations xorFold() would at
 * most (extra iterations fold in zero).
 */
[[gnu::target("avx2")]] inline void
fillGshareIndicesAvx2(const u64 *pc, const u64 *history,
                      std::size_t n, unsigned history_bits,
                      unsigned index_bits, u32 *out)
{
    const __m256i index_mask =
        _mm256_set1_epi64x(i64(mask(index_bits)));
    const __m256i history_mask =
        _mm256_set1_epi64x(i64(mask(history_bits)));
    std::size_t i = 0;
    if (history_bits <= index_bits) {
        const __m128i align_shift =
            _mm_cvtsi32_si128(int(index_bits - history_bits));
        for (; i + 4 <= n; i += 4) {
            const __m256i address = _mm256_and_si256(
                _mm256_srli_epi64(
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(pc + i)),
                    2),
                index_mask);
            __m256i hist = _mm256_and_si256(
                _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(history + i)),
                history_mask);
            hist = _mm256_sll_epi64(hist, align_shift);
            simdStoreIndices(out + i,
                             _mm256_xor_si256(address, hist));
        }
    } else {
        const unsigned folds =
            (history_bits + index_bits - 1) / index_bits;
        const __m128i fold_shift = _mm_cvtsi32_si128(int(index_bits));
        for (; i + 4 <= n; i += 4) {
            const __m256i address = _mm256_and_si256(
                _mm256_srli_epi64(
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(pc + i)),
                    2),
                index_mask);
            __m256i value = _mm256_and_si256(
                _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(history + i)),
                history_mask);
            __m256i folded = _mm256_setzero_si256();
            for (unsigned fold = 0; fold < folds; ++fold) {
                folded = _mm256_xor_si256(
                    folded, _mm256_and_si256(value, index_mask));
                value = _mm256_srl_epi64(value, fold_shift);
            }
            simdStoreIndices(out + i,
                             _mm256_xor_si256(address, folded));
        }
    }
    for (; i < n; ++i) {
        out[i] = static_cast<u32>(u64(gshareIndex(
            pc[i], history[i], history_bits, index_bits)));
    }
}

/** gselectIndex() over four lanes at a time (both concat shapes). */
[[gnu::target("avx2")]] inline void
fillGselectIndicesAvx2(const u64 *pc, const u64 *history,
                       std::size_t n, unsigned history_bits,
                       unsigned index_bits, u32 *out)
{
    std::size_t i = 0;
    if (history_bits >= index_bits) {
        const __m256i index_mask =
            _mm256_set1_epi64x(i64(mask(index_bits)));
        for (; i + 4 <= n; i += 4) {
            const __m256i hist = _mm256_load_si256(
                reinterpret_cast<const __m256i *>(history + i));
            simdStoreIndices(out + i,
                             _mm256_and_si256(hist, index_mask));
        }
    } else {
        const unsigned addr_bits = index_bits - history_bits;
        const __m256i addr_mask =
            _mm256_set1_epi64x(i64(mask(addr_bits)));
        const __m256i history_mask =
            _mm256_set1_epi64x(i64(mask(history_bits)));
        const __m128i concat_shift = _mm_cvtsi32_si128(int(addr_bits));
        for (; i + 4 <= n; i += 4) {
            const __m256i address = _mm256_and_si256(
                _mm256_srli_epi64(
                    _mm256_load_si256(
                        reinterpret_cast<const __m256i *>(pc + i)),
                    2),
                addr_mask);
            __m256i hist = _mm256_and_si256(
                _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(history + i)),
                history_mask);
            hist = _mm256_sll_epi64(hist, concat_shift);
            simdStoreIndices(out + i,
                             _mm256_or_si256(hist, address));
        }
    }
    for (; i < n; ++i) {
        out[i] = static_cast<u32>(u64(gselectIndex(
            pc[i], history[i], history_bits, index_bits)));
    }
}

#endif // BPRED_HAVE_AVX2

/**
 * Phase 1 for the address-truncation index (bimodal, the hybrid's
 * chooser, e-gskew bank 0): @p mode selects the AVX2 kernel or the
 * bit-identical scalar fallback.
 */
inline void
fillAddressIndices(SimdMode mode, const u64 *pc, std::size_t n,
                   unsigned index_bits, u32 *out)
{
#if BPRED_HAVE_AVX2
    if (mode == SimdMode::Avx2) {
        fillAddressIndicesAvx2(pc, n, index_bits, out);
        return;
    }
#endif
    static_cast<void>(mode);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<u32>(
            u64(addressIndex(pc[i], index_bits)));
    }
}

/** Phase 1 for the gshare XOR index (see fillAddressIndices). */
inline void
fillGshareIndices(SimdMode mode, const u64 *pc, const u64 *history,
                  std::size_t n, unsigned history_bits,
                  unsigned index_bits, u32 *out)
{
#if BPRED_HAVE_AVX2
    if (mode == SimdMode::Avx2) {
        fillGshareIndicesAvx2(pc, history, n, history_bits,
                              index_bits, out);
        return;
    }
#endif
    static_cast<void>(mode);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<u32>(u64(gshareIndex(
            pc[i], history[i], history_bits, index_bits)));
    }
}

/** Phase 1 for the gselect concat index (see fillAddressIndices). */
inline void
fillGselectIndices(SimdMode mode, const u64 *pc, const u64 *history,
                   std::size_t n, unsigned history_bits,
                   unsigned index_bits, u32 *out)
{
#if BPRED_HAVE_AVX2
    if (mode == SimdMode::Avx2) {
        fillGselectIndicesAvx2(pc, history, n, history_bits,
                               index_bits, out);
        return;
    }
#endif
    static_cast<void>(mode);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<u32>(u64(gselectIndex(
            pc[i], history[i], history_bits, index_bits)));
    }
}

/**
 * Surface a phase-3 index repair: the precomputed index diverged
 * from the one recomputed out of the resolved history. Phase 0's
 * speculation is exact, so a repair means a fill kernel and its
 * scalar reference disagree — warn once (checked builds only run
 * this path) and let byte-identity tests localize it.
 */
inline void
noteIndexRepair()
{
    static const bool once = [] {
        warn("phase-split replay: precomputed index diverged from "
             "resolved history; repaired from the scalar index "
             "function (fill-kernel bug — results stay exact)");
        return true;
    }();
    static_cast<void>(once);
}

namespace detail
{

/**
 * The release resolve span for narrow counters (max <= 7): one
 * counterTransitionLut() shift per record, unrolled by 4 with split
 * misprediction accumulators.
 */
inline void
resolveLutSpan(u8 *values, const u32 *idx, const u8 *taken,
               std::size_t begin, std::size_t end, u64 lut,
               u8 threshold, u64 &m0, u64 &m1)
{
    std::size_t j = begin;
    for (; j + 4 <= end; j += 4) {
        u8 &v0 = values[idx[j]];
        const u8 t0 = taken[j];
        m0 += u64(u8(v0 >= threshold) != t0);
        v0 = u8((lut >> ((v0 * 2 + t0) * 4)) & 15);
        u8 &v1 = values[idx[j + 1]];
        const u8 t1 = taken[j + 1];
        m1 += u64(u8(v1 >= threshold) != t1);
        v1 = u8((lut >> ((v1 * 2 + t1) * 4)) & 15);
        u8 &v2 = values[idx[j + 2]];
        const u8 t2 = taken[j + 2];
        m0 += u64(u8(v2 >= threshold) != t2);
        v2 = u8((lut >> ((v2 * 2 + t2) * 4)) & 15);
        u8 &v3 = values[idx[j + 3]];
        const u8 t3 = taken[j + 3];
        m1 += u64(u8(v3 >= threshold) != t3);
        v3 = u8((lut >> ((v3 * 2 + t3) * 4)) & 15);
    }
    for (; j < end; ++j) {
        u8 &value = values[idx[j]];
        const u8 outcome = taken[j];
        m0 += u64(u8(value >= threshold) != outcome);
        value = u8((lut >> ((value * 2 + outcome) * 4)) & 15);
    }
}

/** The release resolve span for wide counters (max > 7). */
inline void
resolveArithSpan(u8 *values, const u32 *idx, const u8 *taken,
                 std::size_t begin, std::size_t end, u8 max,
                 u8 threshold, u64 &m0)
{
    for (std::size_t j = begin; j < end; ++j) {
        u8 &value = values[idx[j]];
        const u8 outcome = taken[j];
        m0 += u64(u8(value >= threshold) != outcome);
        const u8 up = u8(outcome & (value < max));
        const u8 down = u8((outcome ^ 1) & (value > 0));
        value = u8(value + up - down);
    }
}

} // namespace detail

/**
 * Phases 2+3 for single-table schemes (bimodal/gshare/gselect):
 * resolve @p n precomputed conditionals against @p table. When
 * @p prefetch_counters is set (tables too big to sit in L1 —
 * simdWantsCounterPrefetch), the pass runs in sub-batches,
 * prefetching the next sub-batch's counter lines before resolving
 * the current one; L1-resident tables run one flat loop instead,
 * since the prefetch instruction itself would be the overhead.
 * @p recompute(j) must return the scalar index function's value for
 * conditional @p j from the stored pre-branch history; checked
 * builds verify every index against it and repair on divergence.
 *
 * The table must be a flat stride-1 view (every single-table caller
 * is); the loops index raw bytes so no per-access stride multiply
 * lands in the address chain.
 */
template <typename RecomputeIndex>
inline void
resolveSingleTable(SatCounterArray::View table, const u32 *idx,
                   const u8 *taken, std::size_t n, bool prefetch_counters,
                   ReplayCounters &counters,
                   [[maybe_unused]] RecomputeIndex &&recompute)
{
    BP_DCHECK(table.stride == 1,
              "resolveSingleTable: strided view (use the bank "
              "resolver)");
    u8 *values = table.values;
    const u8 max = table.max;
    const u8 threshold = table.threshold;
    u64 mispredicts = 0;

#ifdef BPRED_CHECKED
    // Checked builds keep the straight-line loop: per-record index
    // verification dominates anyway, and the repair path stays
    // readable.
    for (std::size_t j = 0; j < n; ++j) {
        u64 index = idx[j];
        const u64 expected = recompute(j);
        if (index != expected) [[unlikely]] {
            noteIndexRepair();
            index = expected;
        }
        const bool outcome = taken[j] != 0;
        const bool prediction = table.predictTaken(index);
        table.update(index, outcome);
        mispredicts += u64(prediction != outcome);
    }
    counters.conditionals += n;
    counters.mispredicts += mispredicts;
    return;
#else
    // Release resolve: the counter transition is one LUT shift for
    // the common narrow widths, and the loop is unrolled by 4 with
    // split misprediction accumulators — the compiler does neither
    // at -O2, and this serial pass is the longest phase. The spans
    // are free functions (detail::resolveLutSpan /
    // resolveArithSpan), not capturing lambdas: measured ~10%
    // faster, the compiler keeps every hot value in registers.
    u64 m0 = 0;
    u64 m1 = 0;
    if (max <= 7) {
        const u64 lut = counterTransitionLut(max);
        if (prefetch_counters) {
            for (std::size_t base = 0; base < n;
                 base += simdSubBatch) {
                const std::size_t end =
                    std::min(n, base + simdSubBatch);
                const std::size_t prefetch_end =
                    std::min(n, end + simdSubBatch);
                for (std::size_t j = end; j < prefetch_end; ++j) {
                    __builtin_prefetch(values + idx[j], 1);
                }
                detail::resolveLutSpan(values, idx, taken, base, end,
                                       lut, threshold, m0, m1);
            }
        } else {
            detail::resolveLutSpan(values, idx, taken, 0, n, lut,
                                   threshold, m0, m1);
        }
    } else {
        if (prefetch_counters) {
            for (std::size_t base = 0; base < n;
                 base += simdSubBatch) {
                const std::size_t end =
                    std::min(n, base + simdSubBatch);
                const std::size_t prefetch_end =
                    std::min(n, end + simdSubBatch);
                for (std::size_t j = end; j < prefetch_end; ++j) {
                    __builtin_prefetch(values + idx[j], 1);
                }
                detail::resolveArithSpan(values, idx, taken, base,
                                         end, max, threshold, m0);
            }
        } else {
            detail::resolveArithSpan(values, idx, taken, 0, n, max,
                                     threshold, m0);
        }
    }
    counters.conditionals += n;
    counters.mispredicts += m0 + m1;
#endif
}

} // namespace bpred
