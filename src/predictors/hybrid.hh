/**
 * @file
 * McFarling combining (hybrid) predictor.
 */

#pragma once

#include <memory>

#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * McFarling's combining predictor: two component predictors plus a
 * PC-indexed chooser table of 2-bit counters that learns, per
 * branch, which component to trust. The chooser trains only when
 * the components disagree.
 *
 * Listed by the paper as one of the hybrid schemes its skewing
 * technique composes with; used here as a baseline.
 */
class HybridPredictor : public Predictor
{
  public:
    /**
     * @param first First component (chooser counter high = trust it).
     * @param second Second component.
     * @param chooser_index_bits log2 of the chooser-table size.
     */
    HybridPredictor(std::unique_ptr<Predictor> first,
                    std::unique_ptr<Predictor> second,
                    unsigned chooser_index_bits);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    Outcome predictAndUpdate(Addr pc, bool taken) override;
    void replayBlock(const BranchRecord *records, std::size_t count,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;

    /** Snapshots compose: supported when both components support it. */
    bool supportsSnapshot() const override;
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    std::unique_ptr<Predictor> firstComponent;
    std::unique_ptr<Predictor> secondComponent;
    SatCounterArray chooser;
    unsigned chooserIndexBits;

    // predict() caches component predictions for update().
    bool firstPrediction = false;
    bool secondPrediction = false;
    Addr predictedPc = 0;
    bool havePrediction = false;
};

} // namespace bpred

