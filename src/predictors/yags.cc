#include "predictors/yags.hh"

#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

YagsPredictor::YagsPredictor(unsigned cache_index_bits,
                             unsigned history_bits,
                             unsigned choice_index_bits,
                             unsigned tag_bits)
    : takenCache(u64(1) << cache_index_bits),
      notTakenCache(u64(1) << cache_index_bits),
      choiceTable(u64(1) << choice_index_bits, 2,
                  2 /* weakly taken */),
      cacheIndexBits(cache_index_bits),
      historyBits(history_bits),
      choiceIndexBits(choice_index_bits),
      tagBits(tag_bits)
{
}

u64
YagsPredictor::cacheIndexOf(Addr pc) const
{
    return gshareIndex(pc, history.raw(), historyBits,
                       cacheIndexBits);
}

u16
YagsPredictor::tagOf(Addr pc) const
{
    return static_cast<u16>((pc >> 2) & mask(tagBits));
}

bool
YagsPredictor::predict(Addr pc)
{
    const bool bias =
        choiceTable.predictTaken(addressIndex(pc, choiceIndexBits));
    // A taken bias consults the "not-taken cache" (the exceptions
    // to taken), and vice versa.
    const auto &cache = bias ? notTakenCache : takenCache;
    const CacheEntry &entry = cache[cacheIndexOf(pc)];
    if (entry.valid && entry.tag == tagOf(pc)) {
        return entry.counter >= 2;
    }
    return bias;
}

void
YagsPredictor::update(Addr pc, bool taken)
{
    const u64 choice_index = addressIndex(pc, choiceIndexBits);
    const bool bias = choiceTable.predictTaken(choice_index);
    auto &cache = bias ? notTakenCache : takenCache;
    CacheEntry &entry = cache[cacheIndexOf(pc)];
    const bool tag_hit = entry.valid && entry.tag == tagOf(pc);

    if (tag_hit) {
        // Train the exception entry.
        if (taken) {
            if (entry.counter < 3) {
                ++entry.counter;
            }
        } else {
            if (entry.counter > 0) {
                --entry.counter;
            }
        }
    } else if (taken != bias) {
        // A new exception: allocate (replacing whatever was there).
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.counter = taken ? 2 : 1; // weak toward the outcome
    }

    // Choice table trains like bi-mode: skip the update when the
    // bias was wrong but the exception cache covered it.
    const bool covered = tag_hit && (entry.counter >= 2) == taken;
    if (!(bias != taken && covered)) {
        choiceTable.update(choice_index, taken);
    }
    history.shiftIn(taken);
}

void
YagsPredictor::notifyUnconditional(Addr)
{
    history.shiftIn(true);
}

std::string
YagsPredictor::name() const
{
    return "yags-2x" + formatEntries(takenCache.size()) + "+" +
        formatEntries(choiceTable.size()) + "-h" +
        std::to_string(historyBits);
}

u64
YagsPredictor::storageBits() const
{
    // Each cache entry: 2-bit counter + tag + valid bit.
    const u64 entry_bits = 2 + tagBits + 1;
    return (takenCache.size() + notTakenCache.size()) * entry_bits +
        choiceTable.storageBits();
}

void
YagsPredictor::reset()
{
    std::fill(takenCache.begin(), takenCache.end(), CacheEntry{});
    std::fill(notTakenCache.begin(), notTakenCache.end(),
              CacheEntry{});
    choiceTable.reset(2);
    history.reset();
}

void
YagsPredictor::saveState(std::ostream &os) const
{
    for (const auto *cache : {&takenCache, &notTakenCache}) {
        putU64(os, cache->size());
        for (const CacheEntry &entry : *cache) {
            putU16(os, entry.tag);
            putU8(os, entry.counter);
            putU8(os, entry.valid ? 1 : 0);
        }
    }
    choiceTable.saveState(os);
    putU64(os, history.raw());
}

void
YagsPredictor::loadState(std::istream &is)
{
    for (auto *cache : {&takenCache, &notTakenCache}) {
        const u64 count = getU64(is);
        if (count != cache->size()) {
            fatal("yags snapshot: cache size mismatch (stored " +
                  std::to_string(count) + ", predictor has " +
                  std::to_string(cache->size()) + ")");
        }
        std::vector<CacheEntry> restored(cache->size());
        for (CacheEntry &entry : restored) {
            entry.tag = getU16(is);
            entry.counter = getU8(is);
            const u8 valid = getU8(is);
            if (entry.tag > mask(tagBits) || entry.counter > 3 ||
                valid > 1) {
                fatal("yags snapshot: invalid cache entry");
            }
            entry.valid = valid != 0;
        }
        *cache = std::move(restored);
    }
    choiceTable.loadState(is);
    history.set(getU64(is));
}

} // namespace bpred
