/**
 * @file
 * The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA
 * 1997) — the contemporaneous *other* attack on the same aliasing
 * problem this paper solves with skewing.
 */

#pragma once

#include <vector>

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * Agree prediction: a per-branch *bias bit* (set to the branch's
 * first observed outcome) plus a gshare-indexed table of counters
 * that predict whether the branch will AGREE with its bias.
 * Because most branches agree with their bias most of the time,
 * two substreams aliased onto one counter usually both want it to
 * say "agree" — converting destructive interference into neutral
 * or constructive interference rather than removing the collision
 * itself (the skewed predictor's approach).
 *
 * Implemented as in the original proposal, with the bias bits held
 * in a direct-mapped, PC-indexed table (standing in for bias
 * storage alongside a BTB entry).
 */
class AgreePredictor : public Predictor
{
  public:
    /**
     * @param index_bits log2 of the agree-counter table size.
     * @param history_bits Global-history length for the index.
     * @param bias_index_bits log2 of the bias-bit table size.
     * @param counter_bits Agree-counter width.
     */
    AgreePredictor(unsigned index_bits, unsigned history_bits,
                   unsigned bias_index_bits, unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    bool biasOf(Addr pc) const;

    /** The whole update() when a probe is attached (kept out of the
     * hot path so the uninstrumented loop stays frameless). */
    void updateProbed(Addr pc, bool taken);

    SatCounterArray agreeTable;
    /** Bias bit per entry; 2 = unset (first encounter pending). */
    std::vector<u8> biasTable;
    GlobalHistory history;
    unsigned indexBits;
    unsigned historyBits;
    unsigned biasIndexBits;
};

} // namespace bpred

