/**
 * @file
 * The ideal unaliased predictor: an infinite table with one
 * dedicated counter per (address, history) pair.
 */

#pragma once

#include <unordered_map>
#include <unordered_set>

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"
#include "support/stats.hh"

namespace bpred
{

/**
 * The unaliased predictor of Table 2: every branch substream —
 * every distinct (address, history) pair — gets a private
 * saturating counter, so no aliasing of any kind occurs.
 *
 * Beyond predicting, it measures the paper's Table 2 columns:
 *
 *  - substream ratio: distinct (address, history) pairs per distinct
 *    branch address;
 *  - compulsory aliasing: first-time references over dynamic
 *    conditional branches;
 *  - misprediction ratio excluding first encounters (the paper does
 *    not charge compulsory references as mispredictions).
 *
 * On a first encounter the new counter is initialized strongly
 * toward the observed outcome.
 */
class UnaliasedPredictor : public Predictor
{
  public:
    /**
     * @param history_bits Global-history length k.
     * @param counter_bits Counter width (1 or 2).
     */
    UnaliasedPredictor(unsigned history_bits, unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;

    /**
     * An infinite structure has no meaningful hardware budget;
     * reports the bits currently allocated.
     */
    u64 storageBits() const override;

    void reset() override;

    bool supportsSnapshot() const override { return true; }

    /**
     * Serialize counters and static-branch addresses in sorted key
     * order so the byte stream is independent of the hash tables'
     * internal layout (which depends on insertion history).
     */
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    /** Distinct (address, history) pairs seen. */
    u64 numSubstreams() const { return counters.size(); }

    /** Distinct conditional branch addresses seen. */
    u64 numStaticBranches() const { return staticBranches.size(); }

    /** Average substreams per static branch (Table 2, column 1). */
    double substreamRatio() const;

    /** First-encounter references / dynamic branches (Table 2, col 2). */
    double compulsoryAliasingRatio() const;

    /**
     * Misprediction ratio among non-first-encounter references
     * (Table 2, columns 3-4).
     */
    double mispredictionRatio() const { return warmMispredicts.ratio(); }

    /** Dynamic conditional branches observed. */
    u64 dynamicBranches() const { return dynamicCount; }

  private:
    u64 keyOf(Addr pc) const;

    std::unordered_map<u64, SatCounter> counters;
    std::unordered_set<Addr> staticBranches;
    GlobalHistory history;
    RatioStat warmMispredicts;
    u64 dynamicCount = 0;
    u64 compulsoryCount = 0;
    unsigned historyBits;
    unsigned counterBits;

    // predict() result latched for the paired update().
    bool lastPredictionValid = false;
    bool lastPrediction = false;
    bool lastWasCold = false;
};

} // namespace bpred

