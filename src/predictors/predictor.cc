#include "predictors/predictor.hh"

namespace bpred
{

Outcome
Predictor::predictAndUpdate(Addr pc, bool taken)
{
    const bool prediction = predict(pc);
    update(pc, taken);
    return {prediction};
}

void
Predictor::notifyUnconditional(Addr)
{
}

} // namespace bpred
