#include "predictors/predictor.hh"

namespace bpred
{

void
Predictor::notifyUnconditional(Addr)
{
}

} // namespace bpred
