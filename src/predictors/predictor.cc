#include "predictors/predictor.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/logging.hh"
#include "support/serialize.hh"

namespace bpred
{

namespace
{

constexpr char snapshotMagic[4] = {'B', 'P', 'S', '1'};
constexpr u8 snapshotVersion = 1;

} // namespace

Outcome
Predictor::predictAndUpdate(Addr pc, bool taken)
{
    const bool prediction = predict(pc);
    update(pc, taken);
    return {prediction};
}

void
Predictor::notifyUnconditional(Addr)
{
}

void
Predictor::replayBlock(const BranchRecord *records, std::size_t count,
                       ReplayCounters &counters, ReplayScratch *)
{
    // Scalar reference path: one virtual fused step per branch.
    // Overrides delegate here while a probe is attached, so this
    // loop defines the observable behaviour of every block replay.
    u64 conditionals = 0;
    u64 mispredicts = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const BranchRecord &record = records[i];
        if (!record.conditional) {
            notifyUnconditional(record.pc);
            continue;
        }
        const bool prediction =
            predictAndUpdate(record.pc, record.taken).prediction;
        ++conditionals;
        if (prediction != record.taken) {
            ++mispredicts;
        }
    }
    counters.conditionals += conditionals;
    counters.mispredicts += mispredicts;
}

void
Predictor::saveState(std::ostream &) const
{
    fatal("predictor '" + name() + "': snapshot not supported");
}

void
Predictor::loadState(std::istream &)
{
    fatal("predictor '" + name() + "': snapshot not supported");
}

void
savePredictorState(const Predictor &predictor, std::ostream &os)
{
    os.write(snapshotMagic, sizeof(snapshotMagic));
    putU8(os, snapshotVersion);
    putString(os, predictor.name());
    predictor.saveState(os);
    if (!os) {
        fatal("predictor snapshot: write failure");
    }
}

void
loadPredictorState(Predictor &predictor, std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is || !std::equal(magic, magic + 4, snapshotMagic)) {
        fatal("predictor snapshot: bad magic (not a BPS1 snapshot)");
    }
    const u8 version = getU8(is);
    if (version != snapshotVersion) {
        fatal("predictor snapshot: unsupported version " +
              std::to_string(version));
    }
    const std::string stored_name = getString(is);
    if (stored_name != predictor.name()) {
        fatal("predictor snapshot: configuration mismatch (snapshot "
              "of '" + stored_name + "', predictor is '" +
              predictor.name() + "')");
    }
    predictor.loadState(is);
}

void
savePredictorState(const Predictor &predictor, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        fatal("predictor snapshot: cannot open '" + path +
              "' for writing");
    }
    savePredictorState(predictor, os);
    if (!os) {
        fatal("predictor snapshot: error while writing '" + path +
              "'");
    }
}

void
loadPredictorState(Predictor &predictor, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        fatal("predictor snapshot: cannot open '" + path +
              "' for reading");
    }
    loadPredictorState(predictor, is);
}

} // namespace bpred
