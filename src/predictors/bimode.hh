/**
 * @file
 * The bi-mode predictor (Lee, Chen & Mudge, MICRO 1997) — the
 * third contemporaneous attack on predictor-table interference,
 * alongside agree (conversion) and gskewed (dispersal): bi-mode
 * *segregates* branches by bias so that entries in each direction
 * table are shared only by branches that mostly agree.
 */

#pragma once

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * Bi-mode: a PC-indexed *choice* table picks one of two
 * gshare-indexed *direction* tables (a taken-leaning and a
 * not-taken-leaning one). Only the selected direction table
 * trains; the choice table trains toward the outcome except when
 * it disagreed but the selected table was nevertheless correct
 * (the bi-mode partial-update rule).
 */
class BiModePredictor : public Predictor
{
  public:
    /**
     * @param direction_index_bits log2 of each direction table.
     * @param history_bits Global-history length.
     * @param choice_index_bits log2 of the choice table.
     * @param counter_bits Counter width for all tables.
     */
    BiModePredictor(unsigned direction_index_bits,
                    unsigned history_bits,
                    unsigned choice_index_bits,
                    unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    u64 directionIndexOf(Addr pc) const;

    SatCounterArray takenTable;
    SatCounterArray notTakenTable;
    SatCounterArray choiceTable;
    GlobalHistory history;
    unsigned directionIndexBits;
    unsigned historyBits;
    unsigned choiceIndexBits;
};

} // namespace bpred

