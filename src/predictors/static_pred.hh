/**
 * @file
 * Trivial static predictors: always-taken and always-not-taken.
 */

#pragma once

#include "predictors/predictor.hh"

namespace bpred
{

/**
 * A stateless static predictor.
 *
 * "Always taken" is the fallback the paper assumes on misses in the
 * fully-associative tagged table of Figure 8; it also serves as a
 * floor baseline in the comparison benches.
 */
class StaticPredictor : public Predictor
{
  public:
    /** @param predict_taken Direction predicted for every branch. */
    explicit StaticPredictor(bool predict_taken = true)
        : direction(predict_taken)
    {}

    bool predict(Addr) override { return direction; }
    void update(Addr, bool) override {}

    std::string
    name() const override
    {
        return direction ? "always-taken" : "always-not-taken";
    }

    u64 storageBits() const override { return 0; }
    void reset() override {}

    // Stateless: a snapshot is trivially supported with an empty
    // payload (the direction is configuration, carried by name()).
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &) const override {}
    void loadState(std::istream &) override {}

  private:
    bool direction;
};

} // namespace bpred

