/**
 * @file
 * Bimodal (Smith) predictor: a PC-indexed table of saturating
 * counters.
 */

#pragma once

#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * The classic Smith predictor [Smith '81]: 2^n saturating counters
 * indexed by low-order branch-address bits. It uses no history, so
 * it anchors the baseline comparisons and serves as the bimodal
 * component of the McFarling hybrid.
 */
class BimodalPredictor : public Predictor
{
  public:
    /**
     * @param index_bits log2 of the table size.
     * @param counter_bits Counter width (1 or 2 in the paper).
     */
    BimodalPredictor(unsigned index_bits, unsigned counter_bits = 2);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    Outcome predictAndUpdate(Addr pc, bool taken) override;
    void replayBlock(const BranchRecord *records, std::size_t count,
                     ReplayCounters &counters,
                     ReplayScratch *scratch) override;
    std::string name() const override;
    u64 storageBits() const override { return table.storageBits(); }
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    u64 indexOf(Addr pc) const;

    /** The whole update() when a probe is attached (kept out of the
     * hot path so the uninstrumented loop stays frameless). */
    void updateProbed(Addr pc, bool taken);

    SatCounterArray table;
    unsigned indexBits;
};

} // namespace bpred

