/**
 * @file
 * The abstract conditional-branch predictor interface.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "support/types.hh"
#include "trace/branch_record.hh"

namespace bpred
{

class ProbeSink;
struct ReplayScratch;

/** Result of a fused predict-and-train step (predictAndUpdate()). */
struct Outcome
{
    /** The direction predicted before the tables trained. */
    bool prediction = false;
};

/**
 * Tallies accumulated by replayBlock(): everything the simulation
 * loop needs per block when no per-branch attribution (top sites,
 * probes) was requested.
 */
struct ReplayCounters
{
    /** Conditional branches resolved in the block. */
    u64 conditionals = 0;

    /** Mispredicted conditional branches among them. */
    u64 mispredicts = 0;
};

/**
 * Abstract conditional-branch direction predictor.
 *
 * Contract: for every *conditional* branch, in trace order, the
 * simulation driver either calls predict(pc) followed by
 * update(pc, taken), or the fused predictAndUpdate(pc, taken) —
 * the two forms must be observably identical (same predictions,
 * same state evolution, same probe events). It calls
 * notifyUnconditional(pc) for every unconditional branch.
 * update() must train with the machine state as it was at
 * predict() time (i.e. the pre-branch global history) and only then
 * advance that state. Predictors that keep global history shift
 * unconditional branches in as taken, as the paper does.
 */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Predicted direction for the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /**
     * Resolve the conditional branch at @p pc with outcome @p taken:
     * train the tables and advance any internal history.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /**
     * Fused predict + update: resolve the conditional branch at
     * @p pc with outcome @p taken and return the direction that
     * would have been predicted beforehand. Must be equivalent to
     * predict(pc) followed by update(pc, taken); the default does
     * exactly that. Hot predictors override it to compute each
     * table index once and touch each counter once — the
     * simulation driver's fast path (see sim/driver.hh).
     */
    virtual Outcome predictAndUpdate(Addr pc, bool taken);

    /**
     * Observe an unconditional branch at @p pc. Default: no effect.
     * Global-history predictors shift in a taken outcome.
     */
    virtual void notifyUnconditional(Addr pc);

    /**
     * Resolve a whole block of records in trace order — conditional
     * branches through the fused step, unconditional ones through
     * notifyUnconditional() — adding the block's conditional and
     * misprediction counts to @p counters.
     *
     * Must be observably identical to looping predictAndUpdate()
     * over the block; the base default does exactly that. Hot
     * schemes override it with a devirtualized kernel (see
     * predictors/block_kernel.hh) so the inner loop costs one
     * virtual dispatch per block instead of one per branch — the
     * gang replay engine's fast path (sim/gang.hh). Overrides must
     * delegate to this scalar default while a probe is attached so
     * telemetry event streams stay bit-identical.
     *
     * @p scratch, when non-null, lends the session's SoA staging
     * buffers (predictors/replay_scratch.hh) and carries the
     * requested SimdMode: schemes with a phase-split kernel may then
     * precompute the block's table indices with the vectorized
     * index pass and resolve fed by them — still byte-identical to
     * the fused path. A null scratch always runs the fused/scalar
     * reference kernels.
     */
    virtual void replayBlock(const BranchRecord *records,
                             std::size_t count,
                             ReplayCounters &counters,
                             ReplayScratch *scratch = nullptr);

    /** Short configuration name, e.g. "gshare-16K-h12". */
    virtual std::string name() const = 0;

    /**
     * Total predictor storage in bits: the hardware cost metric the
     * paper compares designs by. Tag-less tables count only counter
     * bits; tagged structures include tags.
     */
    virtual u64 storageBits() const = 0;

    /** Return to the power-on state. */
    virtual void reset() = 0;

    /**
     * True when this predictor implements saveState()/loadState().
     * Default: false (the base-class implementations throw).
     */
    virtual bool supportsSnapshot() const { return false; }

    /**
     * Serialize the complete mutable predictor state — counters,
     * history registers, chooser state — to @p os so a later
     * loadState() on an identically-configured instance reproduces
     * every subsequent prediction exactly. This is the raw payload;
     * callers wanting a self-describing on-disk artifact should use
     * savePredictorState(), which frames it with a versioned magic
     * and the configuration name.
     *
     * @throws FatalError when the predictor does not support
     *         snapshotting (see supportsSnapshot()).
     */
    virtual void saveState(std::ostream &os) const;

    /**
     * Restore state written by saveState() on a predictor with the
     * same configuration.
     *
     * @throws FatalError on unsupported predictors, geometry
     *         mismatches or a corrupt stream.
     */
    virtual void loadState(std::istream &is);

    /**
     * Attach a telemetry sink (see support/probe.hh); nullptr
     * detaches. Instrumented predictors publish per-prediction
     * events to the sink from update(); predictors without
     * instrumentation simply ignore it. Returns the previously
     * attached sink so callers can restore it.
     */
    ProbeSink *
    attachProbe(ProbeSink *sink)
    {
        ProbeSink *previous = probeSink;
        probeSink = sink;
        return previous;
    }

    /** The currently attached telemetry sink (nullptr if none). */
    ProbeSink *probe() const { return probeSink; }

  protected:
    /**
     * The attached sink, null in the common case. Publishing sites
     * must null-check so the uninstrumented hot path stays a single
     * predictable branch.
     */
    ProbeSink *probeSink = nullptr;
};

/**
 * Write a framed, self-describing snapshot of @p predictor: the
 * "BPS1" magic, a format version, the predictor's configuration
 * name, then the saveState() payload. The name doubles as a
 * configuration fingerprint — loadPredictorState() refuses to
 * restore into a predictor whose name differs.
 *
 * @throws FatalError when snapshotting is unsupported or on I/O
 *         failure.
 */
void savePredictorState(const Predictor &predictor, std::ostream &os);

/**
 * Restore a snapshot written by savePredictorState().
 *
 * @throws FatalError on a bad magic, an unsupported version, a
 *         configuration-name mismatch, or a corrupt payload.
 */
void loadPredictorState(Predictor &predictor, std::istream &is);

/** savePredictorState() to a file. @throws FatalError on I/O error. */
void savePredictorState(const Predictor &predictor,
                        const std::string &path);

/** loadPredictorState() from a file. @throws FatalError on error. */
void loadPredictorState(Predictor &predictor, const std::string &path);

} // namespace bpred

