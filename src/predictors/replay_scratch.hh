/**
 * @file
 * Reusable per-session scratch for the phase-split replay kernels.
 *
 * The phase-split path (predictors/block_kernel_simd.hh) materializes
 * a block's conditional branches into structure-of-arrays form —
 * addresses, pre-branch histories, outcomes, then per-table indices —
 * before any counter is touched. Those arrays live here, owned by the
 * simulation session and threaded through Predictor::replayBlock(),
 * so a gang of predictors replaying the same trace reuses one
 * allocation instead of growing one per scheme per block.
 *
 * Every array is cache-line aligned (support/aligned.hh): the index
 * pass reads them with 256-bit loads, and a 64-byte base plus the
 * block-granular ensure() guarantees those loads never split a line.
 */

#pragma once

#include <array>
#include <cstddef>

#include "support/aligned.hh"
#include "support/check.hh"
#include "support/simd.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * Largest number of per-record index arrays any scheme needs: one
 * per bank of the widest skewed configuration (== maxSkewBanks;
 * restated here so predictors/ does not depend on core/).
 */
constexpr unsigned maxReplayIndexSets = 5;

/**
 * The SoA staging buffers for one block replay, plus the dispatch
 * mode the owning session resolved. Predictors receiving a scratch
 * run the phase-split kernels when resolveSimdMode(mode) selects a
 * vector implementation, and fall back to the fused block kernel
 * otherwise — so a null scratch (the default) or SimdMode::Scalar
 * both mean "the reference block path".
 */
struct ReplayScratch
{
    /** Requested dispatch mode; kernels resolve Auto per block. */
    SimdMode mode = SimdMode::Auto;

    /** Conditional branch addresses, compacted in trace order. */
    AlignedVector<u64> pc;

    /** Pre-branch global history for each conditional. */
    AlignedVector<u64> history;

    /** Outcome (1 = taken) for each conditional. */
    AlignedVector<u8> taken;

    /** Per-table precomputed counter indices (one set per bank). */
    std::array<AlignedVector<u32>, maxReplayIndexSets> indices;

    /**
     * Grow the staging arrays (never shrinking) to hold a block of
     * @p count records using @p index_sets index arrays.
     */
    void
    ensure(std::size_t count, unsigned index_sets)
    {
        if (pc.size() < count) {
            pc.resize(count);
            history.resize(count);
            taken.resize(count);
        }
        for (unsigned set = 0; set < index_sets; ++set) {
            if (indices[set].size() < count) {
                indices[set].resize(count);
            }
        }
        BP_DCHECK(count == 0 ||
                      (isCacheAligned(pc.data()) &&
                       isCacheAligned(history.data()) &&
                       isCacheAligned(taken.data())),
                  "replay scratch: staging arrays not cache aligned");
    }
};

} // namespace bpred
