#include "predictors/local_two_level.hh"

#include <cassert>

#include "predictors/info_vector.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace bpred
{

LocalTwoLevelPredictor::LocalTwoLevelPredictor(unsigned bht_index_bits,
                                               unsigned local_history_bits,
                                               unsigned counter_bits)
    : historyTable(u64(1) << bht_index_bits, 0),
      patternTable(u64(1) << local_history_bits, counter_bits),
      bhtIndexBits(bht_index_bits),
      localHistoryBits(local_history_bits)
{
    assert(local_history_bits >= 1 && local_history_bits <= 16);
}

u64
LocalTwoLevelPredictor::bhtIndexOf(Addr pc) const
{
    return addressIndex(pc, bhtIndexBits);
}

bool
LocalTwoLevelPredictor::predict(Addr pc)
{
    const u16 local_history = historyTable[bhtIndexOf(pc)];
    return patternTable.predictTaken(local_history);
}

void
LocalTwoLevelPredictor::update(Addr pc, bool taken)
{
    u16 &local_history = historyTable[bhtIndexOf(pc)];
    patternTable.update(local_history, taken);
    local_history = static_cast<u16>(
        ((local_history << 1) | (taken ? 1 : 0)) &
        mask(localHistoryBits));
}

std::string
LocalTwoLevelPredictor::name() const
{
    return "pag-" + formatEntries(historyTable.size()) + "x" +
        std::to_string(localHistoryBits);
}

u64
LocalTwoLevelPredictor::storageBits() const
{
    return historyTable.size() * localHistoryBits +
        patternTable.storageBits();
}

void
LocalTwoLevelPredictor::reset()
{
    std::fill(historyTable.begin(), historyTable.end(), 0);
    patternTable.reset();
}

void
LocalTwoLevelPredictor::saveState(std::ostream &os) const
{
    putU64(os, historyTable.size());
    for (const u16 entry : historyTable) {
        putU16(os, entry);
    }
    patternTable.saveState(os);
}

void
LocalTwoLevelPredictor::loadState(std::istream &is)
{
    const u64 count = getU64(is);
    if (count != historyTable.size()) {
        fatal("pag snapshot: history table size mismatch (stored " +
              std::to_string(count) + ", predictor has " +
              std::to_string(historyTable.size()) + ")");
    }
    std::vector<u16> restored(historyTable.size());
    for (u16 &entry : restored) {
        entry = getU16(is);
        if (entry > mask(localHistoryBits)) {
            fatal("pag snapshot: local history exceeds " +
                  std::to_string(localHistoryBits) + " bits");
        }
    }
    patternTable.loadState(is);
    historyTable = std::move(restored);
}

} // namespace bpred
