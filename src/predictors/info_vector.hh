/**
 * @file
 * The (address, history) information vector V and the standard
 * index functions computed from it.
 *
 * The paper defines V = (a_N, ..., a_2, h_k, ..., h_1): the branch
 * address bits above bit 1 (instructions are 4-byte aligned on the
 * traced MIPS machine, so a_1 a_0 carry no information),
 * concatenated above the k global-history bits. All predictors,
 * tagged shadow tables, and the skewing functions operate on this
 * vector, so its packing lives here, in one place.
 */

#pragma once

#include <cassert>

#include "support/bitops.hh"
#include "support/check.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * Pack an (address, history) pair into the information vector
 * V = (a_N...a_2, h_k...h_1).
 *
 * The result doubles as the unique identity of a branch substream,
 * so it is also the key used by tagged tables and the unaliased
 * predictor. With @p history_bits up to 20 and word-aligned PCs
 * below 2^44 this is collision-free in 64 bits.
 *
 * @param pc Branch address (word-aligned; bits 1..0 are dropped).
 * @param history Global history register contents.
 * @param history_bits Number of history bits k to include.
 */
inline u64
packInfoVector(Addr pc, History history, HistWidth history_bits)
{
    BP_DCHECK(history_bits.get() <= 44,
              "info vector history field overflows 64 bits");
    return ((pc >> 2) << history_bits.get()) |
        (history & mask(history_bits.get()));
}

/**
 * gshare index function (McFarling).
 *
 * XORs the global history into the low-order address bits. Per
 * McFarling's report (and footnote 1 of the paper), when the history
 * is *shorter* than the index the history bits are aligned with the
 * high-order end of the index. When the history is *longer* than the
 * index, the history is XOR-folded down to the index width first —
 * the natural generalization used by later predictors.
 *
 * @param pc Branch address (bits 1..0 dropped as alignment).
 * @param history Global history register contents.
 * @param history_bits Number of history bits in use.
 * @param index_bits log2 of the table size.
 */
inline BankIndex
gshareIndex(Addr pc, History history, unsigned history_bits,
            unsigned index_bits)
{
    assert(index_bits >= 1 && index_bits < 64);
    const u64 addr_part = (pc >> 2) & mask(index_bits);
    u64 hist_part = history & mask(history_bits);
    if (history_bits <= index_bits) {
        hist_part <<= (index_bits - history_bits);
    } else {
        hist_part = xorFold(hist_part, index_bits);
    }
    return {addr_part ^ hist_part, u64(1) << index_bits};
}

/**
 * gselect index function (GAs).
 *
 * Concatenates history bits above address bits. With a history at
 * least as long as the index, no address bits survive — exactly the
 * degenerate case the paper highlights for 12-bit history and small
 * tables.
 */
inline BankIndex
gselectIndex(Addr pc, History history, unsigned history_bits,
             unsigned index_bits)
{
    assert(index_bits >= 1 && index_bits < 64);
    const u64 table_size = u64(1) << index_bits;
    if (history_bits >= index_bits) {
        return {history & mask(index_bits), table_size};
    }
    const unsigned addr_bits = index_bits - history_bits;
    const u64 addr_part = (pc >> 2) & mask(addr_bits);
    return {((history & mask(history_bits)) << addr_bits) | addr_part,
            table_size};
}

/** Address-only bit-truncation index: (pc >> 2) mod 2^index_bits. */
inline BankIndex
addressIndex(Addr pc, unsigned index_bits)
{
    assert(index_bits >= 1 && index_bits < 64);
    return {(pc >> 2) & mask(index_bits), u64(1) << index_bits};
}

} // namespace bpred

