#include "predictors/bimodal.hh"

#include "predictors/info_vector.hh"
#include "support/table.hh"

namespace bpred
{

BimodalPredictor::BimodalPredictor(unsigned index_bits,
                                   unsigned counter_bits)
    : table(u64(1) << index_bits, counter_bits),
      indexBits(index_bits)
{
}

u64
BimodalPredictor::indexOf(Addr pc) const
{
    return addressIndex(pc, indexBits);
}

bool
BimodalPredictor::predict(Addr pc)
{
    return table.predictTaken(indexOf(pc));
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    table.update(indexOf(pc), taken);
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + formatEntries(table.size());
}

void
BimodalPredictor::reset()
{
    table.reset();
}

} // namespace bpred
