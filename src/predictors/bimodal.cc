#include "predictors/bimodal.hh"

#include "predictors/block_kernel.hh"
#include "predictors/block_kernel_simd.hh"
#include "predictors/info_vector.hh"
#include "predictors/replay_scratch.hh"
#include "support/probe.hh"
#include "support/table.hh"

namespace bpred
{

namespace
{

/**
 * Bimodal hot state lifted into locals (see block_kernel.hh): the
 * raw counter view and index width live in registers for the whole
 * block instead of being re-loaded after every counter store.
 */
struct BimodalBlockState
{
    SatCounterArray::View table;
    unsigned indexBits;

    bool
    step(Addr pc, bool taken)
    {
        const u64 index = addressIndex(pc, indexBits);
        const bool prediction = table.predictTaken(index);
        table.update(index, taken);
        return prediction;
    }

    void unconditional(Addr) {}
    void commit() {}
};

} // namespace

BimodalPredictor::BimodalPredictor(unsigned index_bits,
                                   unsigned counter_bits)
    : table(u64(1) << index_bits, counter_bits),
      indexBits(index_bits)
{
}

u64
BimodalPredictor::indexOf(Addr pc) const
{
    return addressIndex(pc, indexBits);
}

bool
BimodalPredictor::predict(Addr pc)
{
    return table.predictTaken(indexOf(pc));
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    // Dispatch before any work so the no-sink path keeps nothing
    // live across the probed helper's virtual sink calls (which
    // would force a stack frame on the hot path).
    if (probeSink) [[unlikely]] {
        updateProbed(pc, taken);
        return;
    }
    table.update(indexOf(pc), taken);
}

Outcome
BimodalPredictor::predictAndUpdate(Addr pc, bool taken)
{
    if (probeSink) [[unlikely]] {
        // The probed path is off the hot loop; reuse the split
        // implementation so event order stays identical to
        // predict()+update().
        const bool prediction = predict(pc);
        updateProbed(pc, taken);
        return {prediction};
    }
    const u64 index = indexOf(pc);
    const bool prediction = table.predictTaken(index);
    table.update(index, taken);
    return {prediction};
}

void
BimodalPredictor::replayBlock(const BranchRecord *records,
                              std::size_t count,
                              ReplayCounters &counters,
                              ReplayScratch *scratch)
{
    if (probeSink) [[unlikely]] {
        // Scalar delegation keeps the event stream bit-identical.
        Predictor::replayBlock(records, count, counters);
        return;
    }
    if (scratch && simdIndexWidthOk(indexBits) &&
        resolveSimdMode(scratch->mode) == SimdMode::Avx2) {
        // Phase-split path (block_kernel_simd.hh): the address index
        // has no history dependence at all, so each tile's indices
        // vectorize up front.
        const bool prefetch = simdWantsCounterPrefetch(table.size());
        replayTiled(
            records, count, 0, *scratch, 1,
            [&](std::size_t conditionals) {
                fillAddressIndices(SimdMode::Avx2, scratch->pc.data(),
                                   conditionals, indexBits,
                                   scratch->indices[0].data());
                resolveSingleTable(
                    table.view(), scratch->indices[0].data(),
                    scratch->taken.data(), conditionals, prefetch,
                    counters, [&](std::size_t j) {
                        return u64(addressIndex(scratch->pc[j],
                                                indexBits));
                    });
            });
        return;
    }
    replayBlockWithState(BimodalBlockState{table.view(), indexBits},
                         records, count, counters);
}

void
BimodalPredictor::updateProbed(Addr pc, bool taken)
{
    const u64 index = indexOf(pc);
    probeSink->onResolved({pc, table.predictTaken(index), taken});
    const u8 before = table.value(index);
    table.update(index, taken);
    const u8 after = table.value(index);
    if (before != after) {
        probeSink->onCounterWrite({0, before, after});
    }
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + formatEntries(table.size());
}

void
BimodalPredictor::reset()
{
    table.reset();
}

void
BimodalPredictor::saveState(std::ostream &os) const
{
    table.saveState(os);
}

void
BimodalPredictor::loadState(std::istream &is)
{
    table.loadState(is);
}

} // namespace bpred
