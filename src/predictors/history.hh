/**
 * @file
 * Global branch-history register.
 */

#ifndef BPRED_PREDICTORS_HISTORY_HH
#define BPRED_PREDICTORS_HISTORY_HH

#include "support/bitops.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * A global-history shift register of up to 64 outcomes.
 *
 * Bit 0 holds the most recent outcome (1 = taken). Following the
 * paper, unconditional branches are shifted in as taken — callers
 * shift on *every* branch, conditional or not.
 */
class GlobalHistory
{
  public:
    /** Shift in one outcome (true = taken). */
    void
    shiftIn(bool taken)
    {
        register_ = (register_ << 1) | (taken ? 1 : 0);
    }

    /** The youngest @p num_bits outcomes, youngest in bit 0. */
    History
    value(unsigned num_bits) const
    {
        return register_ & mask(num_bits);
    }

    /** Full 64-outcome register. */
    History raw() const { return register_; }

    /** Overwrite the register (for checkpoint/restore in tests). */
    void set(History value) { register_ = value; }

    /** Clear all history. */
    void reset() { register_ = 0; }

  private:
    History register_ = 0;
};

} // namespace bpred

#endif // BPRED_PREDICTORS_HISTORY_HH
