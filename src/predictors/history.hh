/**
 * @file
 * Global branch-history register.
 */

#pragma once

#include "support/bitops.hh"
#include "support/check.hh"
#include "support/types.hh"

namespace bpred
{

/**
 * A global-history shift register of up to 64 outcomes.
 *
 * Bit 0 holds the most recent outcome (1 = taken). Following the
 * paper, unconditional branches are shifted in as taken — callers
 * shift on *every* branch, conditional or not.
 */
class GlobalHistory
{
  public:
    /** Shift in one outcome (true = taken). */
    void
    shiftIn(bool taken)
    {
        register_ = (register_ << 1) | (taken ? 1 : 0);
    }

    /**
     * The youngest @p num_bits outcomes, youngest in bit 0. The
     * HistWidth parameter is implicitly constructible from
     * unsigned; checked builds panic on widths over 64 (which
     * mask() would silently fold).
     */
    History
    value(HistWidth num_bits) const
    {
        return register_ & mask(num_bits.get());
    }

    /** Full 64-outcome register. */
    History raw() const { return register_; }

    /** Overwrite the register (for checkpoint/restore in tests). */
    void set(History value) { register_ = value; }

    /** Clear all history. */
    void reset() { register_ = 0; }

  private:
    History register_ = 0;
};

} // namespace bpred

