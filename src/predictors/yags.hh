/**
 * @file
 * The YAGS predictor (Eden & Mudge, MICRO 1998): the successor
 * generation of de-aliasing designs — bi-mode's segregation plus
 * small *tagged* exception caches that store only the branches
 * that disagree with their bias.
 */

#pragma once

#include <vector>

#include "predictors/history.hh"
#include "predictors/predictor.hh"
#include "support/sat_counter.hh"

namespace bpred
{

/**
 * YAGS: a PC-indexed choice table gives each branch's bias; two
 * direction caches (one consulted when the bias says taken, one
 * when it says not-taken) hold 2-bit counters *with small tags*
 * and are filled only on exceptions — when a branch goes against
 * its bias. A tag hit overrides the bias; a miss predicts the
 * bias. Tags let unrelated branches coexist without the full cost
 * of a tagged predictor (§3.3's objection): only the exception
 * minority needs tags.
 */
class YagsPredictor : public Predictor
{
  public:
    /**
     * @param cache_index_bits log2 of each direction cache.
     * @param history_bits Global-history length for cache indexing.
     * @param choice_index_bits log2 of the choice table.
     * @param tag_bits Tag width per cache entry (6-8 typical).
     */
    YagsPredictor(unsigned cache_index_bits, unsigned history_bits,
                  unsigned choice_index_bits, unsigned tag_bits = 6);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void notifyUnconditional(Addr pc) override;
    std::string name() const override;
    u64 storageBits() const override;
    void reset() override;
    bool supportsSnapshot() const override { return true; }
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    struct CacheEntry
    {
        u16 tag = 0;
        u8 counter = 0; // 2-bit
        bool valid = false;
    };

    u64 cacheIndexOf(Addr pc) const;
    u16 tagOf(Addr pc) const;

    std::vector<CacheEntry> takenCache;    // consulted on T bias
    std::vector<CacheEntry> notTakenCache; // consulted on NT bias
    SatCounterArray choiceTable;
    GlobalHistory history;
    unsigned cacheIndexBits;
    unsigned historyBits;
    unsigned choiceIndexBits;
    unsigned tagBits;
};

} // namespace bpred

