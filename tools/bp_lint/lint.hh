/**
 * @file
 * bp_lint — repo-specific static analysis for the bpred tree.
 *
 * The predictors' results depend on invariants no compiler checks:
 * every test/bench binary registered with CTest, factory scheme
 * names agreeing with the snapshot fingerprint strings, headers
 * following one include-guard convention, no banned library calls
 * on the simulation paths, and deprecated shims kept out of
 * non-test code. bp_lint walks the source tree and enforces them;
 * it runs as a ctest and as a blocking CI job.
 *
 * The analyzer is deliberately standalone: it links none of the
 * bpred libraries, so a broken tree can still be linted.
 *
 * Suppressions: a line carrying `bp_lint: allow(<rule>)` (normally
 * inside a comment, with a reason) is exempt from <rule> on that
 * line and the next.
 */

#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bplint
{

struct ProjectModel;

/** One rule violation at a source location. */
struct Finding
{
    /** Rule identifier, e.g. "pragma-once". */
    std::string rule;

    /** Path relative to the linted root. */
    std::string file;

    /** 1-based line number (0 when the finding is file-scoped). */
    std::size_t line = 0;

    /** Human-readable description of the violation. */
    std::string message;
};

/** One source file, loaded once and shared by every rule. */
struct SourceFile
{
    /** Path relative to the linted root (generic "/" separators). */
    std::string relative;

    /** File name only, e.g. "factory.cc". */
    std::string name;

    /** Raw contents, split into lines (no trailing newlines). */
    std::vector<std::string> lines;

    /**
     * Contents with comments and string/char literal bodies blanked
     * out, line structure preserved — what identifier-level rules
     * scan so "rand" in a doc comment is not a violation.
     */
    std::vector<std::string> code;

    /** True for .hh/.hpp files. */
    bool isHeader = false;

    /** True for C++ sources or headers (not CMakeLists.txt). */
    bool isCpp = false;

    /** True for files under tests/ (rules exempting tests use it). */
    bool inTests = false;
};

/** The loaded tree a lint run operates on. */
struct RepoTree
{
    std::filesystem::path root;
    std::vector<SourceFile> files;

    /**
     * The shared project model (model.hh), built once by loadTree()
     * after all files are loaded. Rules consume it instead of
     * re-deriving includes, scopes, or scheme-table facts. Held by
     * pointer so lint.hh need not include model.hh; always non-null
     * after loadTree(). Code building a RepoTree by hand must call
     * buildModel() itself before running rules.
     */
    std::shared_ptr<const ProjectModel> model;
};

/** A lint rule: appends findings for the whole tree. */
using RuleFn = void (*)(const RepoTree &, std::vector<Finding> &);

/** Rule registry entry. */
struct RuleInfo
{
    const char *name;
    const char *summary;
    RuleFn run;
};

/** Every rule, in reporting order. */
const std::vector<RuleInfo> &allRules();

/**
 * Load the lintable files under @p root: *.cc, *.cpp, *.hh, *.hpp
 * and CMakeLists.txt, skipping VCS/build/fixture directories (see
 * lint.cc for the exact list).
 *
 * @throws std::runtime_error when @p root is not a directory.
 */
RepoTree loadTree(const std::filesystem::path &root);

/**
 * Invoke @p visit for every file loadTree() would load, without
 * reading contents — the cache's warm-path manifest scan uses this
 * so a cache hit costs one stat() per file instead of a full parse.
 * @p visit receives the absolute path and the root-relative path
 * (generic "/" separators).
 */
void forEachLintableFile(
    const std::filesystem::path &root,
    const std::function<void(const std::filesystem::path &,
                             const std::string &)> &visit);

/** Run @p rules (default: all) over @p tree. */
std::vector<Finding> runLint(const RepoTree &tree);
std::vector<Finding> runLint(const RepoTree &tree,
                             const std::vector<std::string> &rules);

/**
 * True when line @p line (1-based) of @p file carries a
 * `bp_lint: allow(<rule>)` suppression for @p rule, either on the
 * line itself or on the line directly above it.
 */
bool lineAllows(const SourceFile &file, std::size_t line,
                const std::string &rule);

/**
 * Blank out comments and string/char literal bodies of C++ source
 * @p text, preserving newlines (so line numbers survive).
 */
std::string stripCommentsAndStrings(const std::string &text);

/** Lowercase a-z0-9 only: "e-gskew-SH" -> "egskewsh". */
std::string canonicalFingerprint(const std::string &text);

} // namespace bplint
