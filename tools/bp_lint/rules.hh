/**
 * @file
 * Internal registry of lint rule entry points (one per rule_*.cc).
 */

#pragma once

#include "bp_lint/lint.hh"

namespace bplint
{

void ruleCmakeRegistration(const RepoTree &, std::vector<Finding> &);
void rulePragmaOnce(const RepoTree &, std::vector<Finding> &);
void ruleBannedIdentifier(const RepoTree &, std::vector<Finding> &);
void ruleAllocUntrusted(const RepoTree &, std::vector<Finding> &);
void ruleFactoryFingerprint(const RepoTree &,
                            std::vector<Finding> &);
void ruleDeprecatedCall(const RepoTree &, std::vector<Finding> &);
void ruleTraceLiteral(const RepoTree &, std::vector<Finding> &);
void ruleSimdIsolation(const RepoTree &, std::vector<Finding> &);
void ruleLayering(const RepoTree &, std::vector<Finding> &);
void ruleSchemeCoverage(const RepoTree &, std::vector<Finding> &);
void ruleLockDiscipline(const RepoTree &, std::vector<Finding> &);
void ruleAtomicOrder(const RepoTree &, std::vector<Finding> &);

} // namespace bplint
