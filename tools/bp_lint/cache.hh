/**
 * @file
 * The bp_lint result cache.
 *
 * Linting is a function of (file contents, rule selection, tool
 * version). The cache keys a whole-tree manifest digest — FNV-1a
 * over every lintable file's relative path, size and mtime, plus
 * the selected rule names and lintVersion — to the serialized
 * findings of a previous run. A warm hit therefore costs one
 * stat() per file instead of reading, stripping and analyzing the
 * tree: exactly what keeps the blocking CI job and edit-lint loops
 * fast as the tree grows.
 *
 * mtime+size is the usual make-style approximation: touching a
 * file without changing it misses the cache (harmless, just
 * re-lints), and an edit that preserves both size and mtime
 * granularity would falsely hit — acceptable for a linter whose
 * cold run is itself cheap, and the reason `--cache` is opt-in.
 *
 * Entries are one file per digest under the cache directory;
 * stale entries are pruned opportunistically (everything but the
 * current key), so the directory holds at most a handful of files.
 */

#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bp_lint/lint.hh"

namespace bplint
{

/**
 * Manifest digest of the tree under @p root for @p rules (empty =
 * all rules). Stats every lintable file; never reads contents.
 */
std::string cacheKey(const std::filesystem::path &root,
                     const std::vector<std::string> &rules);

/**
 * Load cached findings for @p key from @p dir, or nullopt on miss
 * or unreadable/corrupt entry (a corrupt entry is treated as a
 * miss, never an error).
 */
std::optional<std::vector<Finding>>
cacheLoad(const std::filesystem::path &dir, const std::string &key);

/**
 * Store @p findings for @p key under @p dir (created when absent)
 * and prune entries for other keys. I/O failures are swallowed —
 * a broken cache must never break the lint run.
 */
void cacheStore(const std::filesystem::path &dir,
                const std::string &key,
                const std::vector<Finding> &findings);

} // namespace bplint
