/**
 * @file
 * SARIF 2.1.0 serialization of lint findings.
 *
 * One run, one driver ("bp_lint"), one reportingDescriptor per
 * registered rule, one result per finding. The output is the
 * minimal valid subset GitHub code scanning ingests: uploading it
 * turns lint findings into pull-request annotations without any
 * format glue in CI.
 */

#pragma once

#include <string>
#include <vector>

#include "bp_lint/lint.hh"

namespace bplint
{

/** Tool version stamped into the SARIF driver object. */
extern const char *const lintVersion;

/**
 * Serialize @p findings as a SARIF 2.1.0 log. File-scoped findings
 * (line 0) emit a location without a region, since SARIF requires
 * startLine >= 1.
 */
std::string toSarif(const std::vector<Finding> &findings);

/** Serialize and write to @p path; throws std::runtime_error on
 * I/O failure. */
void writeSarif(const std::vector<Finding> &findings,
                const std::string &path);

} // namespace bplint
