/**
 * @file
 * Rule "cmake-registration": every test_*.cc and bench_*.cc must be
 * named in the CMakeLists.txt of its own directory.
 *
 * An unregistered test compiles on nobody's machine and fails on
 * nobody's CI — the suite silently shrinks. The registration
 * convention is one bpred_add_test()/bpred_add_bench() line per
 * binary, so a plain textual mention of the file name is the
 * invariant checked here.
 */

#include "bp_lint/lint.hh"

#include <map>

namespace bplint
{

namespace
{

std::string
directoryOf(const std::string &relative)
{
    const std::size_t slash = relative.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : relative.substr(0, slash);
}

bool
isRegistrable(const std::string &name)
{
    return (name.rfind("test_", 0) == 0 ||
            name.rfind("bench_", 0) == 0) &&
        name.size() > 3 &&
        name.compare(name.size() - 3, 3, ".cc") == 0;
}

} // namespace

void
ruleCmakeRegistration(const RepoTree &tree,
                      std::vector<Finding> &findings)
{
    // Directory -> its CMakeLists contents (if present).
    std::map<std::string, const SourceFile *> cmake_by_dir;
    for (const SourceFile &file : tree.files) {
        if (file.name == "CMakeLists.txt") {
            cmake_by_dir[directoryOf(file.relative)] = &file;
        }
    }

    for (const SourceFile &file : tree.files) {
        if (!isRegistrable(file.name)) {
            continue;
        }
        const auto cmake =
            cmake_by_dir.find(directoryOf(file.relative));
        if (cmake == cmake_by_dir.end()) {
            findings.push_back(
                {"cmake-registration", file.relative, 0,
                 "no CMakeLists.txt alongside this test/bench "
                 "source"});
            continue;
        }
        bool registered = false;
        for (const std::string &line : cmake->second->lines) {
            // A mention inside a CMake comment is not a
            // registration.
            const std::string code =
                line.substr(0, line.find('#'));
            if (code.find(file.name) != std::string::npos) {
                registered = true;
                break;
            }
        }
        if (!registered) {
            findings.push_back(
                {"cmake-registration", file.relative, 0,
                 "not registered in " + cmake->second->relative +
                     " — the binary is never built or run"});
        }
    }
}

} // namespace bplint
