/**
 * @file
 * Rule "layering": #include edges must follow the declared module
 * DAG.
 *
 * The tree is layered bottom-up:
 *
 *     support -> trace -> predictors -> {core -> aliasing, model,
 *     workloads} -> sim -> serve
 *
 * with bench/, examples/ and tests/ above everything and
 * tools/bp_lint deliberately outside the graph (it links no bpred
 * code so a broken tree can still be linted). A backward include —
 * say support/ reaching into sim/ — compiles fine today and turns
 * into a dependency cycle the next time someone adds the reverse
 * edge, so the rule enforces the DAG from the explicit edge list
 * below rather than from whatever the build currently tolerates.
 *
 * Violations are flagged at the offending #include directive. The
 * rule also closes over includes *within the tree*: when a file's
 * own includes are legal but one of them (transitively) drags in a
 * forbidden module, the file is flagged at the include that starts
 * the chain, with the chain spelled out. Escapes use
 * `bp_lint: allow(layering)` on the directive line.
 */

#include "bp_lint/lint.hh"
#include "bp_lint/model.hh"

#include <map>
#include <set>
#include <string>

namespace bplint
{

namespace
{

/** The declared DAG: module -> modules it may include from. */
const std::map<std::string, std::set<std::string>> &
declaredEdges()
{
    static const std::map<std::string, std::set<std::string>> edges =
        {
            {"support", {}},
            {"trace", {"support"}},
            {"predictors", {"support", "trace"}},
            {"core", {"support", "trace", "predictors"}},
            {"aliasing", {"support", "trace", "predictors", "core"}},
            {"model",
             {"support", "trace", "predictors", "aliasing"}},
            {"workloads", {"support", "trace", "predictors"}},
            {"sim",
             {"support", "trace", "predictors", "core",
              "aliasing"}},
            {"serve", {"support", "trace", "predictors", "sim"}},
            {"bench",
             {"support", "trace", "predictors", "core", "aliasing",
              "model", "workloads", "sim", "serve"}},
            {"examples",
             {"support", "trace", "predictors", "core", "aliasing",
              "model", "workloads", "sim", "serve"}},
            {"tests",
             {"support", "trace", "predictors", "core", "aliasing",
              "model", "workloads", "sim", "serve", "bp_lint"}},
            {"bp_lint", {}},
            {"bp_corpus",
             {"support", "trace", "predictors", "core", "aliasing",
              "workloads", "sim"}},
        };
    return edges;
}

/** Module a file belongs to, or "" when outside the graph. */
std::string
moduleOf(const std::string &relative)
{
    for (const char *prefix : {"src/", "tools/"}) {
        const std::string p = prefix;
        if (relative.rfind(p, 0) == 0) {
            const std::size_t slash = relative.find('/', p.size());
            if (slash != std::string::npos) {
                return relative.substr(p.size(),
                                       slash - p.size());
            }
            return "";
        }
    }
    const std::size_t slash = relative.find('/');
    if (slash == std::string::npos) {
        return ""; // top-level files (CMakeLists.txt) are exempt
    }
    const std::string top = relative.substr(0, slash);
    if (top == "tests" || top == "bench" || top == "examples") {
        return top;
    }
    return "";
}

/** Module a quoted include path targets, or "" when unknown. */
std::string
includeTarget(const std::string &path)
{
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) {
        return "";
    }
    const std::string module = path.substr(0, slash);
    return declaredEdges().count(module) ? module : "";
}

bool
edgeAllowed(const std::string &from, const std::string &to)
{
    if (from == to) {
        return true;
    }
    const auto it = declaredEdges().find(from);
    return it != declaredEdges().end() && it->second.count(to) != 0;
}

/**
 * Transitive closure of the declared edges: a module legitimately
 * inherits its dependencies' dependencies (serve includes sim
 * headers which include core headers). Direct #includes are held
 * to the declared list; transitive reachability to the closure.
 */
bool
closureAllows(const std::string &from, const std::string &to)
{
    if (from == to) {
        return true;
    }
    static std::map<std::string, std::set<std::string>> closed;
    auto it = closed.find(from);
    if (it == closed.end()) {
        std::set<std::string> reach;
        std::vector<std::string> pending{from};
        while (!pending.empty()) {
            const std::string current = pending.back();
            pending.pop_back();
            const auto edges = declaredEdges().find(current);
            if (edges == declaredEdges().end()) {
                continue;
            }
            for (const std::string &next : edges->second) {
                if (reach.insert(next).second) {
                    pending.push_back(next);
                }
            }
        }
        it = closed.emplace(from, std::move(reach)).first;
    }
    return it->second.count(to) != 0;
}

} // namespace

void
ruleLayering(const RepoTree &tree, std::vector<Finding> &findings)
{
    const ProjectModel &model = *tree.model;

    // Resolve quoted include paths to tree files: the include
    // spelling is the path with the src/ or tools/ prefix stripped.
    std::map<std::string, std::size_t> byIncludePath;
    for (std::size_t i = 0; i < tree.files.size(); ++i) {
        const std::string &relative = tree.files[i].relative;
        for (const char *prefix : {"src/", "tools/"}) {
            const std::string p = prefix;
            if (relative.rfind(p, 0) == 0) {
                byIncludePath.emplace(relative.substr(p.size()), i);
            }
        }
        byIncludePath.emplace(relative, i);
    }

    for (std::size_t i = 0; i < tree.files.size(); ++i) {
        const SourceFile &file = tree.files[i];
        const std::string from = moduleOf(file.relative);
        if (!file.isCpp || from.empty()) {
            continue;
        }
        for (const IncludeRef &include : model.files[i].includes) {
            if (include.angled) {
                continue;
            }
            const std::string to = includeTarget(include.path);
            if (to.empty()) {
                continue;
            }
            if (lineAllows(file, include.line, "layering")) {
                continue;
            }
            if (!edgeAllowed(from, to)) {
                findings.push_back(
                    {"layering", file.relative, include.line,
                     "module '" + from + "' must not include '" +
                         include.path + "' (module '" + to +
                         "' is not in its declared dependency "
                         "list)"});
                continue;
            }

            // Legal direct edge: close over what the included
            // header itself drags in, staying inside the tree.
            // Depth-first with a visited set; the first forbidden
            // module found reports the chain.
            const auto resolved = byIncludePath.find(include.path);
            if (resolved == byIncludePath.end()) {
                continue;
            }
            std::set<std::size_t> visited{i};
            std::vector<std::pair<std::size_t, std::string>> stack{
                {resolved->second, include.path}};
            while (!stack.empty()) {
                const auto [index, chain] = stack.back();
                stack.pop_back();
                if (!visited.insert(index).second) {
                    continue;
                }
                const std::string via =
                    moduleOf(tree.files[index].relative);
                if (!via.empty() && !closureAllows(from, via)) {
                    findings.push_back(
                        {"layering", file.relative, include.line,
                         "module '" + from +
                             "' transitively reaches module '" +
                             via + "' via " + chain +
                             " (not in its declared dependency "
                             "list)"});
                    stack.clear();
                    break;
                }
                for (const IncludeRef &deeper :
                     model.files[index].includes) {
                    if (deeper.angled) {
                        continue;
                    }
                    const auto next =
                        byIncludePath.find(deeper.path);
                    if (next != byIncludePath.end()) {
                        stack.push_back(
                            {next->second,
                             chain + " -> " + deeper.path});
                    }
                }
            }
        }
    }
}

} // namespace bplint
