/**
 * @file
 * Rule "factory-fingerprint": every scheme name in the factory's
 * listSchemes() table must correspond to a predictor name()
 * fingerprint string.
 *
 * The BPS1 snapshot format uses Predictor::name() as its
 * configuration fingerprint, and the factory's scheme names are the
 * user-facing spelling of the same configuration. If a scheme is
 * renamed (or added) without a matching name() literal, snapshots
 * and reports stop being attributable to specs — silently. The rule
 * ties the two together: the canonical form of each scheme name
 * (lowercase alphanumerics) must prefix the canonical form of some
 * string literal inside a name() implementation.
 *
 * Schemes whose fingerprint legitimately differs (e.g. "static"
 * prints "always-taken") declare it in factory.cc with a
 * `bp_lint: fingerprint(<scheme>)=<prefix>` comment.
 */

#include "bp_lint/lint.hh"

#include <cctype>
#include <map>
#include <set>

namespace bplint
{

namespace
{

/** Extract string literals from stripped-code+raw line pairs. */
std::vector<std::string>
literalsInRange(const SourceFile &file, std::size_t begin_line,
                std::size_t end_line)
{
    // The stripped code keeps quote characters but blanks literal
    // bodies, so literal *positions* come from `code` and their
    // text from `lines`.
    std::vector<std::string> literals;
    for (std::size_t i = begin_line; i < end_line &&
         i < file.code.size(); ++i) {
        const std::string &code = file.code[i];
        const std::string &raw = file.lines[i];
        std::size_t pos = 0;
        while ((pos = code.find('"', pos)) != std::string::npos) {
            const std::size_t close = code.find('"', pos + 1);
            if (close == std::string::npos || close >= raw.size()) {
                break;
            }
            literals.push_back(
                raw.substr(pos + 1, close - pos - 1));
            pos = close + 1;
        }
    }
    return literals;
}

/**
 * Find every `name() const` implementation in @p file and collect
 * the string literals inside its body (up to the brace-matched
 * end).
 */
void
collectNameLiterals(const SourceFile &file,
                    std::set<std::string> &out)
{
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        if (file.code[i].find("name() const") == std::string::npos) {
            continue;
        }
        // Walk forward to the opening brace, then to its match.
        int depth = 0;
        bool opened = false;
        for (std::size_t j = i; j < file.code.size(); ++j) {
            for (const char c : file.code[j]) {
                if (c == '{') {
                    ++depth;
                    opened = true;
                } else if (c == '}') {
                    --depth;
                }
            }
            // Declarations (";" before any "{") have no body.
            if (!opened &&
                file.code[j].find(';') != std::string::npos) {
                break;
            }
            if (opened && depth <= 0) {
                for (const std::string &lit :
                     literalsInRange(file, i, j + 1)) {
                    out.insert(canonicalFingerprint(lit));
                }
                break;
            }
        }
    }
}

} // namespace

void
ruleFactoryFingerprint(const RepoTree &tree,
                       std::vector<Finding> &findings)
{
    const SourceFile *factory = nullptr;
    for (const SourceFile &file : tree.files) {
        if (file.relative == "src/sim/factory.cc") {
            factory = &file;
        }
    }
    if (!factory) {
        return; // Fixture trees without a factory skip the rule.
    }

    // Scheme names: the first string literal of each top-level
    // brace-entry inside the listSchemes() table. Brace depth is
    // tracked so nested field-spec initializers (e.g.
    // {{"direction", ...}}) are not mistaken for schemes.
    std::map<std::string, std::size_t> schemes; // name -> line
    bool armed = false;    // saw listSchemes()
    bool in_table = false; // inside the initializer braces
    bool done = false;
    int depth = 0;
    char prev = '\0'; // last non-space char before the table opens
    for (std::size_t i = 0; i < factory->code.size() && !done; ++i) {
        const std::string &code = factory->code[i];
        const std::string &raw = factory->lines[i];
        if (!armed) {
            if (code.find("listSchemes()") == std::string::npos) {
                continue;
            }
            armed = true;
        }
        for (std::size_t p = 0; p < code.size(); ++p) {
            const char c = code[p];
            if (!in_table) {
                if (c == '{' && prev == '=') {
                    in_table = true;
                    depth = 0;
                } else if (!std::isspace(
                               static_cast<unsigned char>(c))) {
                    prev = c;
                }
                continue;
            }
            if (c == '{') {
                if (depth == 0 && p + 1 < code.size() &&
                    code[p + 1] == '"') {
                    const std::size_t close =
                        code.find('"', p + 2);
                    if (close != std::string::npos &&
                        close < raw.size()) {
                        schemes.emplace(
                            raw.substr(p + 2, close - p - 2),
                            i + 1);
                    }
                }
                ++depth;
            } else if (c == '}') {
                if (depth == 0) {
                    done = true; // table initializer closed
                    break;
                }
                --depth;
            }
        }
    }
    if (schemes.empty()) {
        findings.push_back(
            {"factory-fingerprint", factory->relative, 0,
             "could not locate the listSchemes() scheme table"});
        return;
    }

    // Declared overrides: bp_lint: fingerprint(<scheme>)=<prefix>
    std::map<std::string, std::string> overrides;
    for (const std::string &line : factory->lines) {
        const std::string marker = "bp_lint: fingerprint(";
        const std::size_t at = line.find(marker);
        if (at == std::string::npos) {
            continue;
        }
        const std::size_t open = at + marker.size();
        const std::size_t close = line.find(')', open);
        const std::size_t eq = line.find('=', open);
        if (close == std::string::npos || eq == std::string::npos ||
            eq < close) {
            continue;
        }
        // The prefix is a single token; anything after the first
        // whitespace is free-form justification.
        std::string prefix = line.substr(eq + 1);
        const std::size_t end = prefix.find_first_of(" \t");
        if (end != std::string::npos) {
            prefix.resize(end);
        }
        overrides[line.substr(open, close - open)] = prefix;
    }

    // Fingerprints: canonical string literals inside every name()
    // implementation in the tree.
    std::set<std::string> fingerprints;
    for (const SourceFile &file : tree.files) {
        if (file.isCpp && !file.inTests) {
            collectNameLiterals(file, fingerprints);
        }
    }

    for (const auto &[scheme, line] : schemes) {
        const auto override_it = overrides.find(scheme);
        const std::string expected = canonicalFingerprint(
            override_it != overrides.end() ? override_it->second
                                           : scheme);
        bool matched = false;
        for (const std::string &fingerprint : fingerprints) {
            if (fingerprint.rfind(expected, 0) == 0) {
                matched = true;
                break;
            }
        }
        if (!matched) {
            findings.push_back(
                {"factory-fingerprint", factory->relative, line,
                 "scheme '" + scheme +
                     "' has no name() fingerprint literal "
                     "starting with '" +
                     expected +
                     "' (or declare a bp_lint: fingerprint(" +
                     scheme + ")=<prefix> override)"});
        }
    }
}

} // namespace bplint
