/**
 * @file
 * Rule "factory-fingerprint": every scheme name in the factory's
 * listSchemes() table must correspond to a predictor name()
 * fingerprint string.
 *
 * The BPS1 snapshot format uses Predictor::name() as its
 * configuration fingerprint, and the factory's scheme names are the
 * user-facing spelling of the same configuration. If a scheme is
 * renamed (or added) without a matching name() literal, snapshots
 * and reports stop being attributable to specs — silently. The rule
 * ties the two together: the canonical form of each scheme name
 * (lowercase alphanumerics) must prefix the canonical form of some
 * string literal inside a name() implementation.
 *
 * Schemes whose fingerprint legitimately differs (e.g. "static"
 * prints "always-taken") declare it in factory.cc with a
 * `bp_lint: fingerprint(<scheme>)=<prefix>` comment.
 *
 * The scheme table itself (entries, overrides, per-scheme classes)
 * comes from the shared project model; this rule only contributes
 * the name()-literal scan and the prefix check.
 */

#include "bp_lint/lint.hh"
#include "bp_lint/model.hh"

#include <set>

namespace bplint
{

namespace
{

/** Extract string literals from stripped-code+raw line pairs. */
std::vector<std::string>
literalsInRange(const SourceFile &file, std::size_t begin_line,
                std::size_t end_line)
{
    // The stripped code keeps quote characters but blanks literal
    // bodies, so literal *positions* come from `code` and their
    // text from `lines`.
    std::vector<std::string> literals;
    for (std::size_t i = begin_line; i < end_line &&
         i < file.code.size(); ++i) {
        const std::string &code = file.code[i];
        const std::string &raw = file.lines[i];
        std::size_t pos = 0;
        while ((pos = code.find('"', pos)) != std::string::npos) {
            const std::size_t close = code.find('"', pos + 1);
            if (close == std::string::npos || close >= raw.size()) {
                break;
            }
            literals.push_back(
                raw.substr(pos + 1, close - pos - 1));
            pos = close + 1;
        }
    }
    return literals;
}

/**
 * Find every `name() const` implementation in @p file and collect
 * the string literals inside its body (up to the brace-matched
 * end).
 */
void
collectNameLiterals(const SourceFile &file,
                    std::set<std::string> &out)
{
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        if (file.code[i].find("name() const") == std::string::npos) {
            continue;
        }
        // Walk forward to the opening brace, then to its match.
        int depth = 0;
        bool opened = false;
        for (std::size_t j = i; j < file.code.size(); ++j) {
            for (const char c : file.code[j]) {
                if (c == '{') {
                    ++depth;
                    opened = true;
                } else if (c == '}') {
                    --depth;
                }
            }
            // Declarations (";" before any "{") have no body.
            if (!opened &&
                file.code[j].find(';') != std::string::npos) {
                break;
            }
            if (opened && depth <= 0) {
                for (const std::string &lit :
                     literalsInRange(file, i, j + 1)) {
                    out.insert(canonicalFingerprint(lit));
                }
                break;
            }
        }
    }
}

} // namespace

void
ruleFactoryFingerprint(const RepoTree &tree,
                       std::vector<Finding> &findings)
{
    const ProjectModel &model = *tree.model;
    if (!model.hasFactory) {
        return; // Fixture trees without a factory skip the rule.
    }
    if (model.schemes.empty()) {
        findings.push_back(
            {"factory-fingerprint", model.factoryFile, 0,
             "could not locate the listSchemes() scheme table"});
        return;
    }

    // Fingerprints: canonical string literals inside every name()
    // implementation in the tree.
    std::set<std::string> fingerprints;
    for (const SourceFile &file : tree.files) {
        if (file.isCpp && !file.inTests) {
            collectNameLiterals(file, fingerprints);
        }
    }

    for (const SchemeFact &scheme : model.schemes) {
        const auto override_it =
            model.fingerprintOverrides.find(scheme.name);
        const std::string expected = canonicalFingerprint(
            override_it != model.fingerprintOverrides.end()
                ? override_it->second
                : scheme.name);
        bool matched = false;
        for (const std::string &fingerprint : fingerprints) {
            if (fingerprint.rfind(expected, 0) == 0) {
                matched = true;
                break;
            }
        }
        if (!matched) {
            findings.push_back(
                {"factory-fingerprint", model.factoryFile,
                 scheme.line,
                 "scheme '" + scheme.name +
                     "' has no name() fingerprint literal "
                     "starting with '" +
                     expected +
                     "' (or declare a bp_lint: fingerprint(" +
                     scheme.name + ")=<prefix> override)"});
        }
    }
}

} // namespace bplint
