/**
 * @file
 * Rule "simd-isolation": <immintrin.h> and the _mm / __m128-256-512
 * intrinsics are confined to *_simd translation units, and inside
 * those they must sit under a #if BPRED_HAVE_AVX2 guard.
 *
 * The build compiles no file with -mavx2; vector code is emitted
 * per-function via [[gnu::target("avx2")]] inside the *_simd
 * headers, and every other translation unit must stay buildable on
 * a scalar-only target (BPRED_SIMD_SCALAR_ONLY). An intrinsic that
 * leaks outside that boundary compiles fine on the CI host and
 * breaks the scalar build — exactly the class of rot a compiler
 * cannot flag on the host that introduces it.
 *
 * Matching runs over comment- and string-stripped code, so prose
 * (and the "avx2" literal inside the target attribute) never trips
 * it.
 */

#include "bp_lint/lint.hh"

namespace bplint
{

namespace
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

/** True when the file stem ends in "_simd" (kernel_simd.hh, ...). */
bool
isSimdFile(const std::string &name)
{
    const std::size_t dot = name.rfind('.');
    const std::string stem =
        dot == std::string::npos ? name : name.substr(0, dot);
    static const std::string suffix = "_simd";
    return stem.size() >= suffix.size() &&
        stem.compare(stem.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** True when the (stripped) line includes <immintrin.h>. */
bool
includesImmintrin(const std::string &code)
{
    return code.find("#include") != std::string::npos &&
        code.find("immintrin.h") != std::string::npos;
}

/**
 * First intrinsic identifier on the line: an _mm... call/constant
 * or a __m128/__m256/__m512 vector type, at an identifier boundary.
 * Returns its position, or npos.
 */
std::size_t
findIntrinsic(const std::string &code)
{
    static const char *const prefixes[] = {"_mm", "__m128", "__m256",
                                           "__m512"};
    std::size_t best = std::string::npos;
    for (const char *prefix : prefixes) {
        std::size_t pos = 0;
        while ((pos = code.find(prefix, pos)) != std::string::npos) {
            if (pos == 0 || !isIdentChar(code[pos - 1])) {
                best = std::min(best, pos);
                break;
            }
            ++pos;
        }
    }
    return best;
}

/**
 * Preprocessor-conditional tracker: enough #if/#else/#endif
 * bookkeeping to answer "is this line inside a BPRED_HAVE_AVX2
 * guard". An #else flips the top of the stack to unguarded (it is
 * the scalar side of the gate); #elif re-evaluates its own
 * condition.
 */
class GuardStack
{
  public:
    void
    observe(const std::string &code)
    {
        std::size_t at = code.find_first_not_of(" \t");
        if (at == std::string::npos || code[at] != '#') {
            return;
        }
        at = code.find_first_not_of(" \t", at + 1);
        if (at == std::string::npos) {
            return;
        }
        const std::string rest = code.substr(at);
        const bool mentions_gate =
            rest.find("BPRED_HAVE_AVX2") != std::string::npos;
        if (rest.rfind("ifdef", 0) == 0 ||
            rest.rfind("ifndef", 0) == 0 ||
            rest.rfind("if", 0) == 0) {
            stack_.push_back(mentions_gate);
        } else if (rest.rfind("elif", 0) == 0) {
            if (!stack_.empty()) {
                stack_.back() = mentions_gate;
            }
        } else if (rest.rfind("else", 0) == 0) {
            if (!stack_.empty()) {
                stack_.back() = false;
            }
        } else if (rest.rfind("endif", 0) == 0) {
            if (!stack_.empty()) {
                stack_.pop_back();
            }
        }
    }

    bool
    guarded() const
    {
        for (const bool gate : stack_) {
            if (gate) {
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<bool> stack_;
};

} // namespace

void
ruleSimdIsolation(const RepoTree &tree,
                  std::vector<Finding> &findings)
{
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp) {
            continue;
        }
        const bool simd_file = isSimdFile(file.name);
        GuardStack guards;
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];
            const std::size_t line_no = i + 1;
            guards.observe(code);
            const bool has_include = includesImmintrin(code);
            const bool has_intrinsic =
                findIntrinsic(code) != std::string::npos;
            if (!has_include && !has_intrinsic) {
                continue;
            }
            if (lineAllows(file, line_no, "simd-isolation")) {
                continue;
            }
            if (!simd_file) {
                findings.push_back(
                    {"simd-isolation", file.relative, line_no,
                     std::string(has_include
                                     ? "<immintrin.h> included"
                                     : "vector intrinsic used") +
                         " outside a *_simd file; keep intrinsics "
                         "in the *_simd kernels behind the SimdMode "
                         "dispatch"});
            } else if (!guards.guarded()) {
                findings.push_back(
                    {"simd-isolation", file.relative, line_no,
                     std::string(has_include ? "<immintrin.h> include"
                                             : "vector intrinsic") +
                         " not under #if BPRED_HAVE_AVX2; the "
                         "scalar-only build must compile this "
                         "file"});
            }
        }
    }
}

} // namespace bplint
