/**
 * @file
 * The bp_lint project model: per-file artifacts computed once per
 * lint run and shared by every rule.
 *
 * Before the model existed each rule re-derived what it needed from
 * the raw lines — rule_factory re-parsed the scheme table, the simd
 * rule re-walked preprocessor state, and no rule could see past one
 * file. The model is one pass over the loaded tree producing:
 *
 *  - an include list per file (quoted and angled, with line
 *    numbers), which the layering rule checks against the declared
 *    module DAG and the lock rule uses to scope annotation checks;
 *  - a brace-scope index per file (every `{...}` span with its
 *    parent), the skeleton for the lock-discipline and
 *    scheme-coverage scope walks;
 *  - a class index over the whole tree (name, bases, body span,
 *    declaring file), so rules can ask "does this class or any
 *    ancestor declare saveState()?" across files;
 *  - scheme-table facts parsed from src/sim/factory.cc: the
 *    listSchemes() entries, the makePredictor() branch -> class
 *    mapping, fingerprint overrides, and scalar-only waivers;
 *  - every `bp_lint: guarded_by(<mutex>)` annotation in the tree,
 *    resolved to the field or function it is attached to.
 *
 * Everything here is heuristic in the same deliberate way
 * rule_factory always was: brace matching and identifier scans over
 * comment-stripped code, tuned to this repo's layout conventions,
 * cheap enough to run on every commit. The fixtures in
 * tests/fixtures/lint/ pin the heuristics in both directions.
 */

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bp_lint/lint.hh"

namespace bplint
{

/** One #include directive. */
struct IncludeRef
{
    /** 1-based line of the directive. */
    std::size_t line = 0;

    /** Include path as written, e.g. "serve/predictor_pool.hh". */
    std::string path;

    /** True for <...> system includes. */
    bool angled = false;
};

/** One brace-delimited scope in a file's stripped code. */
struct Scope
{
    /** 0-based position of the opening '{'. */
    std::size_t openLine = 0;
    std::size_t openCol = 0;

    /** 0-based position of the matching '}'. */
    std::size_t closeLine = 0;
    std::size_t closeCol = 0;

    /** Index of the enclosing scope, -1 at top level. */
    int parent = -1;
};

/**
 * All scopes of one file, in opening order. Unbalanced braces
 * (mid-edit files) simply truncate the index; rules degrade to
 * "not guarded" rather than crash.
 */
struct ScopeIndex
{
    std::vector<Scope> scopes;

    /**
     * Index of the innermost scope containing 0-based (line, col),
     * or -1 when the position is at top level.
     */
    int innermostAt(std::size_t line, std::size_t col) const;

    /** True when @p ancestor is @p scope or one of its parents. */
    bool isAncestorOrSelf(int ancestor, int scope) const;
};

/** One class/struct definition with its body span. */
struct ClassInfo
{
    std::string name;

    /** Base-class names (last identifier of each base specifier). */
    std::vector<std::string> bases;

    /** Declaring file (relative path) and 1-based line. */
    std::string file;
    std::size_t line = 0;

    /** 0-based body span [beginLine, endLine]. */
    std::size_t beginLine = 0;
    std::size_t endLine = 0;
};

/** One factory scheme with the classes its branch constructs. */
struct SchemeFact
{
    std::string name;

    /** 1-based line of the table entry in factory.cc. */
    std::size_t line = 0;

    /**
     * Classes make_unique'd in this scheme's makePredictor()
     * branch, in textual order — the first is the outermost
     * (primary) type the factory returns for the scheme.
     */
    std::vector<std::string> classes;
};

/** One `bp_lint: guarded_by(<mutex>)` annotation. */
struct GuardedEntity
{
    /** The annotated field or function name. */
    std::string name;

    /** The mutex (field or accessor) that must be held. */
    std::string mutexName;

    /** Declaring file (relative path) and 1-based line. */
    std::string file;
    std::size_t line = 0;
};

/** Per-file artifacts, parallel to RepoTree::files. */
struct FileModel
{
    std::vector<IncludeRef> includes;
    ScopeIndex scopes;
};

/** The shared model every rule consumes. */
struct ProjectModel
{
    /** files[i] describes tree.files[i]. */
    std::vector<FileModel> files;

    /** Every class definition in the tree, in file order. */
    std::vector<ClassInfo> classes;

    /** name -> index into classes (first definition wins). */
    std::map<std::string, std::size_t> classByName;

    /** True when src/sim/factory.cc was found in the tree. */
    bool hasFactory = false;

    /** Relative path of the factory file (when hasFactory). */
    std::string factoryFile;

    /** listSchemes() table entries, in table order. */
    std::vector<SchemeFact> schemes;

    /** bp_lint: fingerprint(<scheme>)=<prefix> overrides. */
    std::map<std::string, std::string> fingerprintOverrides;

    /** bp_lint: scalar-only(<scheme>) waivers -> 1-based line. */
    std::map<std::string, std::size_t> scalarOnlyWaivers;

    /** Every guarded_by annotation in the tree. */
    std::vector<GuardedEntity> guardedEntities;

    /**
     * True when the class named @p name, or any transitive base
     * reachable through classByName, satisfies @p pred; the root
     * interface class "Predictor" is excluded (its defaults are
     * what overrides exist to replace). @p pred receives each
     * candidate ClassInfo.
     */
    bool hierarchyMentions(const RepoTree &tree,
                           const std::string &name,
                           const std::string &needle) const;

    /**
     * True when class @p name itself declares @p method: the
     * method name appears inside the class body span, or a
     * "<name>::<method>" qualified definition appears anywhere in
     * the tree. Inherited declarations do not count.
     */
    bool classDeclares(const RepoTree &tree, const std::string &name,
                       const std::string &method) const;
};

/**
 * Build the model for @p tree. Called once by loadTree(); rules
 * reach it through RepoTree::model.
 */
ProjectModel buildModel(const RepoTree &tree);

/**
 * True when @p file (its relative path) is @p headerRelative or
 * directly includes it (include path suffix match, so
 * "serve/predictor_pool.hh" matches "src/serve/predictor_pool.hh").
 */
bool usesHeader(const SourceFile &file, const FileModel &artifacts,
                const std::string &headerRelative);

} // namespace bplint
