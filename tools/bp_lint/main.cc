/**
 * @file
 * bp_lint command-line driver.
 *
 * Usage:
 *   bp_lint [--root <dir>] [--rule <name>]... [--list-rules]
 *
 * Exit status: 0 on a clean tree, 1 when findings were reported,
 * 2 on usage or I/O errors. Findings print one per line as
 * `file:line: [rule] message` so editors and CI annotate them.
 */

#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bp_lint/lint.hh"

namespace
{

int
usage(std::ostream &os, int status)
{
    os << "usage: bp_lint [--root <dir>] [--rule <name>]... "
          "[--list-rules]\n";
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> rules;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            rules.push_back(argv[++i]);
        } else if (arg == "--list-rules") {
            for (const bplint::RuleInfo &rule :
                 bplint::allRules()) {
                std::cout << rule.name << ": " << rule.summary
                          << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "bp_lint: unknown argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    for (const std::string &rule : rules) {
        bool known = false;
        for (const bplint::RuleInfo &info : bplint::allRules()) {
            known = known || rule == info.name;
        }
        if (!known) {
            std::cerr << "bp_lint: unknown rule '" << rule
                      << "' (see --list-rules)\n";
            return 2;
        }
    }

    try {
        const bplint::RepoTree tree = bplint::loadTree(root);
        const std::vector<bplint::Finding> findings =
            bplint::runLint(tree, rules);
        for (const bplint::Finding &finding : findings) {
            std::cout << finding.file << ":" << finding.line
                      << ": [" << finding.rule << "] "
                      << finding.message << "\n";
        }
        if (findings.empty()) {
            std::cout << "bp_lint: clean (" << tree.files.size()
                      << " files)\n";
            return 0;
        }
        std::cout << "bp_lint: " << findings.size()
                  << " finding(s)\n";
        return 1;
    } catch (const std::exception &error) {
        std::cerr << "bp_lint: " << error.what() << "\n";
        return 2;
    }
}
