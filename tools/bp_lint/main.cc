/**
 * @file
 * bp_lint command-line driver.
 *
 * Usage:
 *   bp_lint [--root <dir>] [--rule <name>]... [--list-rules]
 *           [--sarif <path>] [--cache <dir>]
 *
 * Exit status: 0 on a clean tree, 1 when findings were reported,
 * 2 on usage or I/O errors. Findings print one per line as
 * `file:line: [rule] message` so editors and CI annotate them.
 *
 * `--sarif <path>` additionally writes the findings as a SARIF
 * 2.1.0 log for GitHub code scanning. `--cache <dir>` keys the run
 * on a whole-tree mtime+size manifest: a warm hit replays the
 * stored findings (and still writes SARIF) without reading any
 * source file.
 */

#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bp_lint/cache.hh"
#include "bp_lint/lint.hh"
#include "bp_lint/sarif.hh"

namespace
{

int
usage(std::ostream &os, int status)
{
    os << "usage: bp_lint [--root <dir>] [--rule <name>]... "
          "[--list-rules] [--sarif <path>] [--cache <dir>]\n";
    return status;
}

int
report(const std::vector<bplint::Finding> &findings,
       const std::string &sarifPath, std::size_t fileCount,
       bool cached)
{
    if (!sarifPath.empty()) {
        bplint::writeSarif(findings, sarifPath);
    }
    for (const bplint::Finding &finding : findings) {
        std::cout << finding.file << ":" << finding.line << ": ["
                  << finding.rule << "] " << finding.message
                  << "\n";
    }
    const char *const suffix = cached ? ", cached" : "";
    if (findings.empty()) {
        std::cout << "bp_lint: clean (" << fileCount << " files"
                  << suffix << ")\n";
        return 0;
    }
    std::cout << "bp_lint: " << findings.size() << " finding(s)"
              << suffix << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string sarifPath;
    std::string cacheDir;
    std::vector<std::string> rules;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            rules.push_back(argv[++i]);
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--cache" && i + 1 < argc) {
            cacheDir = argv[++i];
        } else if (arg == "--list-rules") {
            for (const bplint::RuleInfo &rule :
                 bplint::allRules()) {
                std::cout << rule.name << ": " << rule.summary
                          << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "bp_lint: unknown argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    for (const std::string &rule : rules) {
        bool known = false;
        for (const bplint::RuleInfo &info : bplint::allRules()) {
            known = known || rule == info.name;
        }
        if (!known) {
            std::cerr << "bp_lint: unknown rule '" << rule
                      << "' (see --list-rules)\n";
            return 2;
        }
    }

    try {
        std::string key;
        std::size_t fileCount = 0;
        if (!cacheDir.empty()) {
            key = bplint::cacheKey(root, rules);
            bplint::forEachLintableFile(
                root, [&](const std::filesystem::path &,
                          const std::string &) { ++fileCount; });
            const auto cached = bplint::cacheLoad(cacheDir, key);
            if (cached) {
                return report(*cached, sarifPath, fileCount, true);
            }
        }

        const bplint::RepoTree tree = bplint::loadTree(root);
        const std::vector<bplint::Finding> findings =
            bplint::runLint(tree, rules);
        if (!cacheDir.empty()) {
            bplint::cacheStore(cacheDir, key, findings);
        }
        return report(findings, sarifPath, tree.files.size(),
                      false);
    } catch (const std::exception &error) {
        std::cerr << "bp_lint: " << error.what() << "\n";
        return 2;
    }
}
