#include "bp_lint/model.hh"

#include <algorithm>

namespace bplint
{

namespace
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

/** Position of identifier @p name in @p code from @p from, at
 * identifier boundaries on both sides; npos when absent. */
std::size_t
findIdent(const std::string &code, const std::string &name,
          std::size_t from = 0)
{
    std::size_t pos = from;
    while ((pos = code.find(name, pos)) != std::string::npos) {
        const bool left = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t after = pos + name.size();
        const bool right =
            after >= code.size() || !isIdentChar(code[after]);
        if (left && right) {
            return pos;
        }
        ++pos;
    }
    return std::string::npos;
}

/** Parse #include directives from one stripped line. */
void
parseInclude(const std::string &code, std::size_t line_no,
             std::vector<IncludeRef> &out)
{
    const std::size_t hash = code.find_first_not_of(" \t");
    if (hash == std::string::npos || code[hash] != '#') {
        return;
    }
    const std::size_t kw = code.find("include", hash + 1);
    if (kw == std::string::npos) {
        return;
    }
    const std::size_t open =
        code.find_first_of("\"<", kw + std::string("include").size());
    if (open == std::string::npos) {
        return;
    }
    const bool angled = code[open] == '<';
    const std::size_t close =
        code.find(angled ? '>' : '"', open + 1);
    if (close == std::string::npos) {
        return;
    }
    out.push_back({line_no, code.substr(open + 1, close - open - 1),
                   angled});
}

/**
 * Build the scope index of one file by matching braces over the
 * stripped code (strings/comments are already blanked, so every
 * '{' is structural). Note: quoted include paths are blanked
 * too, but parseInclude reads them before this runs — include
 * paths come from the raw lines, see buildFileModel.
 */
ScopeIndex
buildScopes(const SourceFile &file)
{
    ScopeIndex index;
    std::vector<int> stack;
    for (std::size_t line = 0; line < file.code.size(); ++line) {
        const std::string &code = file.code[line];
        for (std::size_t col = 0; col < code.size(); ++col) {
            const char c = code[col];
            if (c == '{') {
                Scope scope;
                scope.openLine = line;
                scope.openCol = col;
                scope.closeLine = file.code.size();
                scope.closeCol = 0;
                scope.parent =
                    stack.empty() ? -1 : stack.back();
                stack.push_back(
                    static_cast<int>(index.scopes.size()));
                index.scopes.push_back(scope);
            } else if (c == '}' && !stack.empty()) {
                Scope &scope = index.scopes[stack.back()];
                scope.closeLine = line;
                scope.closeCol = col;
                stack.pop_back();
            }
        }
    }
    return index;
}

/**
 * Collect class/struct definitions from one file: `class X final :
 * public Y { ... }`. Forward declarations (`;` before `{`) are
 * skipped. The body span comes from the scope index.
 */
void
collectClasses(const SourceFile &file, std::size_t file_index,
               const FileModel &artifacts,
               std::vector<ClassInfo> &out)
{
    (void)file_index;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string &code = file.code[i];
        for (const char *keyword : {"class", "struct"}) {
            std::size_t at = findIdent(code, keyword);
            if (at == std::string::npos) {
                continue;
            }
            // The head may wrap lines: join a small window.
            std::string head;
            std::size_t head_line = i;
            for (std::size_t j = i; j < file.code.size() &&
                 j < i + 6; ++j) {
                head += (j == i)
                    ? file.code[j].substr(at)
                    : file.code[j];
                head += ' ';
                if (file.code[j].find_first_of("{;") !=
                    std::string::npos && j >= i) {
                    break;
                }
            }
            const std::size_t body = head.find('{');
            const std::size_t semi = head.find(';');
            if (body == std::string::npos ||
                (semi != std::string::npos && semi < body)) {
                continue; // forward declaration or pointer member
            }

            // Name: first identifier after the keyword (skipping
            // attribute brackets would be overkill for this tree).
            std::size_t pos = std::string(keyword).size();
            while (pos < head.size() && !isIdentChar(head[pos])) {
                if (head[pos] == '{' || head[pos] == ':') {
                    pos = head.size(); // anonymous or malformed
                }
                ++pos;
            }
            std::size_t end = pos;
            while (end < head.size() && isIdentChar(head[end])) {
                ++end;
            }
            if (pos >= head.size() || pos == end || pos >= body) {
                continue;
            }

            ClassInfo info;
            info.name = head.substr(pos, end - pos);
            info.file = file.relative;
            info.line = head_line + 1;

            // Bases: identifiers between ':' and '{', keeping the
            // last complete identifier of each comma-separated
            // specifier ("public bpred::Predictor" -> "Predictor").
            const std::size_t colon = head.find(':', end);
            if (colon != std::string::npos && colon < body &&
                (colon + 1 >= head.size() ||
                 head[colon + 1] != ':')) {
                std::string base;
                std::string last;
                for (std::size_t p = colon + 1; p <= body; ++p) {
                    const char c = p < body ? head[p] : ',';
                    if (isIdentChar(c)) {
                        base += c;
                        continue;
                    }
                    if (!base.empty() && base != "public" &&
                        base != "private" && base != "protected" &&
                        base != "virtual" && base != "final") {
                        last = base;
                    }
                    base.clear();
                    if (c == ',') {
                        if (!last.empty()) {
                            info.bases.push_back(last);
                        }
                        last.clear();
                    }
                }
            }

            // Body span: the scope whose '{' matches `body`. Map
            // the joined-head offset back to (line, col).
            std::size_t brace_line = head_line;
            std::size_t brace_col = 0;
            {
                std::size_t consumed = 0;
                bool found = false;
                for (std::size_t j = i; j < file.code.size() &&
                     j < i + 6 && !found; ++j) {
                    const std::string part = (j == i)
                        ? file.code[j].substr(at)
                        : file.code[j];
                    if (body < consumed + part.size() + 1) {
                        brace_line = j;
                        brace_col = body - consumed +
                            (j == i ? at : 0);
                        found = true;
                    }
                    consumed += part.size() + 1;
                }
                if (!found) {
                    continue;
                }
            }
            for (const Scope &scope : artifacts.scopes.scopes) {
                if (scope.openLine == brace_line &&
                    scope.openCol == brace_col) {
                    info.beginLine = scope.openLine;
                    info.endLine = scope.closeLine;
                    break;
                }
            }
            if (info.endLine >= info.beginLine &&
                info.endLine > 0) {
                out.push_back(std::move(info));
            }
        }
    }
}

/**
 * Parse one `bp_lint: guarded_by(<mutex>)` annotation target: the
 * declared name on the stripped line — the identifier directly
 * before '(' when the line declares a function, otherwise the last
 * identifier before the first of '=', '{' or ';'.
 */
std::string
declaredEntity(const std::string &code)
{
    std::size_t stop = code.find_first_of("=({;");
    if (stop == std::string::npos) {
        stop = code.size();
    }
    std::size_t end = stop;
    while (end > 0 &&
           (code[end - 1] == ' ' || code[end - 1] == '\t')) {
        --end;
    }
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(code[begin - 1])) {
        --begin;
    }
    return code.substr(begin, end - begin);
}

/** Collect guarded_by annotations from one file's raw lines. */
void
collectGuarded(const SourceFile &file,
               std::vector<GuardedEntity> &out)
{
    static const std::string marker = "bp_lint: guarded_by(";
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
        const std::size_t at = file.lines[i].find(marker);
        if (at == std::string::npos) {
            continue;
        }
        const std::size_t open = at + marker.size();
        const std::size_t close = file.lines[i].find(')', open);
        if (close == std::string::npos) {
            continue;
        }
        GuardedEntity entity;
        entity.mutexName =
            file.lines[i].substr(open, close - open);
        // Documentation uses guarded_by(<mutex>) placeholders; a
        // real annotation names an identifier.
        if (entity.mutexName.empty() ||
            !std::all_of(entity.mutexName.begin(),
                         entity.mutexName.end(), isIdentChar)) {
            continue;
        }
        entity.file = file.relative;
        entity.line = i + 1;
        // The annotation sits on the declaration line or on the
        // line directly above it.
        entity.name =
            i < file.code.size() ? declaredEntity(file.code[i]) : "";
        if (entity.name.empty() && i + 1 < file.code.size()) {
            entity.name = declaredEntity(file.code[i + 1]);
            entity.line = i + 2;
        }
        if (!entity.name.empty() && !entity.mutexName.empty()) {
            out.push_back(std::move(entity));
        }
    }
}

/**
 * Parse factory facts: the listSchemes() table (entry names +
 * lines), fingerprint overrides, scalar-only waivers, and the
 * makePredictor() branch -> make_unique<Class> mapping.
 */
void
parseFactory(const RepoTree &tree, std::size_t factory_index,
             ProjectModel &model)
{
    const SourceFile &factory = tree.files[factory_index];
    const FileModel &artifacts = model.files[factory_index];
    model.hasFactory = true;
    model.factoryFile = factory.relative;

    // --- listSchemes() table: first string literal of each
    // top-level brace entry (same walk rule_factory always did).
    bool armed = false;
    bool in_table = false;
    bool done = false;
    int depth = 0;
    char prev = '\0';
    for (std::size_t i = 0; i < factory.code.size() && !done; ++i) {
        const std::string &code = factory.code[i];
        const std::string &raw = factory.lines[i];
        if (!armed) {
            if (code.find("listSchemes()") == std::string::npos) {
                continue;
            }
            armed = true;
        }
        for (std::size_t p = 0; p < code.size(); ++p) {
            const char c = code[p];
            if (!in_table) {
                if (c == '{' && prev == '=') {
                    in_table = true;
                    depth = 0;
                } else if (c != ' ' && c != '\t') {
                    prev = c;
                }
                continue;
            }
            if (c == '{') {
                if (depth == 0 && p + 1 < code.size() &&
                    code[p + 1] == '"') {
                    const std::size_t close = code.find('"', p + 2);
                    if (close != std::string::npos &&
                        close < raw.size()) {
                        SchemeFact fact;
                        fact.name =
                            raw.substr(p + 2, close - p - 2);
                        fact.line = i + 1;
                        model.schemes.push_back(std::move(fact));
                    }
                }
                ++depth;
            } else if (c == '}') {
                if (depth == 0) {
                    done = true;
                    break;
                }
                --depth;
            }
        }
    }

    // --- declared overrides and waivers (raw lines: they live in
    // comments).
    for (std::size_t i = 0; i < factory.lines.size(); ++i) {
        const std::string &line = factory.lines[i];
        {
            static const std::string marker = "bp_lint: fingerprint(";
            const std::size_t at = line.find(marker);
            if (at != std::string::npos) {
                const std::size_t open = at + marker.size();
                const std::size_t close = line.find(')', open);
                const std::size_t eq = line.find('=', open);
                if (close != std::string::npos &&
                    eq != std::string::npos && eq > close) {
                    std::string prefix = line.substr(eq + 1);
                    const std::size_t end =
                        prefix.find_first_of(" \t");
                    if (end != std::string::npos) {
                        prefix.resize(end);
                    }
                    model.fingerprintOverrides
                        [line.substr(open, close - open)] = prefix;
                }
            }
        }
        {
            static const std::string marker =
                "bp_lint: scalar-only(";
            const std::size_t at = line.find(marker);
            if (at != std::string::npos) {
                const std::size_t open = at + marker.size();
                const std::size_t close = line.find(')', open);
                if (close != std::string::npos) {
                    model.scalarOnlyWaivers
                        [line.substr(open, close - open)] = i + 1;
                }
            }
        }
    }

    // --- makePredictor() branches: for every make_unique<Class>
    // inside the factory, attribute Class to the schemes compared
    // in the innermost enclosing if-condition that mentions
    // `scheme ==`. Conditions are read from the text directly
    // before the scope's opening brace (same line plus up to three
    // lines above, enough for this tree's clang-format wrapping).
    const ScopeIndex &scopes = artifacts.scopes;
    auto schemesControlling = [&](int scope_index) {
        std::vector<std::string> names;
        if (scope_index < 0) {
            return names;
        }
        const Scope &scope = scopes.scopes[scope_index];
        std::string cond;
        const std::size_t first =
            scope.openLine >= 3 ? scope.openLine - 3 : 0;
        for (std::size_t j = first; j < scope.openLine; ++j) {
            cond += factory.code[j];
            cond += ' ';
        }
        cond += factory.code[scope.openLine].substr(
            0, scope.openCol);
        // Collect every scheme == "<name>" comparison; the literal
        // body is blanked in stripped code, so read names from the
        // raw lines by re-scanning them over the same window.
        std::string raw;
        for (std::size_t j = first; j < scope.openLine; ++j) {
            raw += factory.lines[j];
            raw += ' ';
        }
        raw += factory.lines[scope.openLine].substr(
            0, std::min(scope.openCol,
                        factory.lines[scope.openLine].size()));
        if (cond.find("scheme ==") == std::string::npos &&
            cond.find("scheme==") == std::string::npos) {
            return names;
        }
        std::size_t pos = 0;
        while ((pos = raw.find("scheme", pos)) !=
               std::string::npos) {
            const std::size_t quote = raw.find('"', pos);
            const std::size_t eq = raw.find("==", pos);
            if (quote == std::string::npos ||
                eq == std::string::npos || eq > quote) {
                break;
            }
            const std::size_t close = raw.find('"', quote + 1);
            if (close == std::string::npos) {
                break;
            }
            names.push_back(
                raw.substr(quote + 1, close - quote - 1));
            pos = close + 1;
        }
        return names;
    };

    for (std::size_t i = 0; i < factory.code.size(); ++i) {
        const std::string &code = factory.code[i];
        static const std::string needle = "make_unique<";
        std::size_t pos = 0;
        while ((pos = code.find(needle, pos)) !=
               std::string::npos) {
            const std::size_t begin = pos + needle.size();
            std::size_t end = begin;
            while (end < code.size() && isIdentChar(code[end])) {
                ++end;
            }
            const std::string class_name =
                code.substr(begin, end - begin);
            pos = end;
            if (class_name.empty()) {
                continue;
            }
            int scope = scopes.innermostAt(i, begin);
            std::vector<std::string> controlling;
            while (scope >= 0) {
                controlling = schemesControlling(scope);
                if (!controlling.empty()) {
                    break;
                }
                scope = scopes.scopes[scope].parent;
            }
            for (const std::string &scheme_name : controlling) {
                for (SchemeFact &fact : model.schemes) {
                    if (fact.name != scheme_name) {
                        continue;
                    }
                    if (std::find(fact.classes.begin(),
                                  fact.classes.end(),
                                  class_name) ==
                        fact.classes.end()) {
                        fact.classes.push_back(class_name);
                    }
                }
            }
        }
    }
}

} // namespace

int
ScopeIndex::innermostAt(std::size_t line, std::size_t col) const
{
    int best = -1;
    std::size_t best_open_line = 0;
    std::size_t best_open_col = 0;
    for (std::size_t i = 0; i < scopes.size(); ++i) {
        const Scope &scope = scopes[i];
        const bool after_open = scope.openLine < line ||
            (scope.openLine == line && scope.openCol < col);
        const bool before_close = scope.closeLine > line ||
            (scope.closeLine == line && scope.closeCol >= col);
        if (!after_open || !before_close) {
            continue;
        }
        // Scopes nest, so the latest-opening container is the
        // innermost.
        if (best < 0 || scope.openLine > best_open_line ||
            (scope.openLine == best_open_line &&
             scope.openCol > best_open_col)) {
            best = static_cast<int>(i);
            best_open_line = scope.openLine;
            best_open_col = scope.openCol;
        }
    }
    return best;
}

bool
ScopeIndex::isAncestorOrSelf(int ancestor, int scope) const
{
    if (ancestor < 0) {
        return true; // top level encloses everything
    }
    while (scope >= 0) {
        if (scope == ancestor) {
            return true;
        }
        scope = scopes[scope].parent;
    }
    return false;
}

bool
ProjectModel::hierarchyMentions(const RepoTree &tree,
                                const std::string &name,
                                const std::string &needle) const
{
    std::set<std::string> visited;
    std::vector<std::string> pending{name};
    while (!pending.empty()) {
        const std::string current = pending.back();
        pending.pop_back();
        if (current == "Predictor" ||
            !visited.insert(current).second) {
            continue; // root interface defaults never count
        }
        if (classDeclares(tree, current, needle)) {
            return true;
        }
        const auto it = classByName.find(current);
        if (it == classByName.end()) {
            continue;
        }
        for (const std::string &base :
             classes[it->second].bases) {
            pending.push_back(base);
        }
    }
    return false;
}

bool
ProjectModel::classDeclares(const RepoTree &tree,
                            const std::string &name,
                            const std::string &method) const
{
    const auto it = classByName.find(name);
    if (it != classByName.end()) {
        const ClassInfo &info = classes[it->second];
        for (const SourceFile &file : tree.files) {
            if (file.relative != info.file) {
                continue;
            }
            for (std::size_t i = info.beginLine;
                 i <= info.endLine && i < file.code.size(); ++i) {
                if (findIdent(file.code[i], method) !=
                    std::string::npos) {
                    return true;
                }
            }
        }
    }
    // Out-of-class qualified definition: Class::method anywhere,
    // with an identifier boundary after the method name so
    // Class::saveStateX does not satisfy saveState.
    const std::string qualified = name + "::" + method;
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp || file.inTests) {
            continue;
        }
        for (const std::string &code : file.code) {
            std::size_t pos = 0;
            while ((pos = code.find(qualified, pos)) !=
                   std::string::npos) {
                const std::size_t after = pos + qualified.size();
                if (after >= code.size() ||
                    !isIdentChar(code[after])) {
                    return true;
                }
                pos = after;
            }
        }
    }
    return false;
}

bool
usesHeader(const SourceFile &file, const FileModel &artifacts,
           const std::string &headerRelative)
{
    if (file.relative == headerRelative) {
        return true;
    }
    for (const IncludeRef &include : artifacts.includes) {
        if (include.angled) {
            continue;
        }
        if (headerRelative == include.path ||
            (headerRelative.size() > include.path.size() &&
             headerRelative.compare(
                 headerRelative.size() - include.path.size() - 1,
                 include.path.size() + 1,
                 "/" + include.path) == 0)) {
            return true;
        }
    }
    return false;
}

ProjectModel
buildModel(const RepoTree &tree)
{
    ProjectModel model;
    model.files.resize(tree.files.size());

    std::size_t factory_index = tree.files.size();
    for (std::size_t i = 0; i < tree.files.size(); ++i) {
        const SourceFile &file = tree.files[i];
        FileModel &artifacts = model.files[i];
        if (!file.isCpp) {
            continue;
        }
        // Include paths are string literals, blanked in the
        // stripped code — parse directives from the raw lines
        // (a commented-out #include is rare enough to accept).
        for (std::size_t line = 0; line < file.lines.size();
             ++line) {
            parseInclude(file.lines[line], line + 1,
                         artifacts.includes);
        }
        artifacts.scopes = buildScopes(file);
        collectClasses(file, i, artifacts, model.classes);
        collectGuarded(file, model.guardedEntities);
        if (file.relative == "src/sim/factory.cc") {
            factory_index = i;
        }
    }

    for (std::size_t i = 0; i < model.classes.size(); ++i) {
        model.classByName.emplace(model.classes[i].name, i);
    }

    if (factory_index < tree.files.size()) {
        parseFactory(tree, factory_index, model);
    }
    return model;
}

} // namespace bplint
