/**
 * @file
 * Rule "deprecated-call": functions declared [[deprecated]] may
 * only be called from tests.
 *
 * Deprecated shims exist so tests can pin the old surface against
 * the new one; production and bench code calling them means the
 * migration regressed. The compiler's -Wdeprecated is a warning
 * nobody reads in CI logs — this makes it a hard lint error
 * outside tests/.
 */

#include "bp_lint/lint.hh"

#include <map>

namespace bplint
{

namespace
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

/**
 * The declared function name following a [[deprecated...]]
 * attribute at line @p attr_line: the identifier directly before
 * the first '(' within the next few lines.
 */
std::string
declaredName(const SourceFile &file, std::size_t attr_line)
{
    for (std::size_t i = attr_line; i < file.code.size() &&
         i < attr_line + 6; ++i) {
        std::string code = file.code[i];
        if (i == attr_line) {
            // Skip past the attribute itself (and its message).
            const std::size_t close = code.find("]]");
            if (close == std::string::npos) {
                continue;
            }
            code = code.substr(close + 2);
        }
        const std::size_t paren = code.find('(');
        if (paren == std::string::npos) {
            continue;
        }
        std::size_t end = paren;
        while (end > 0 &&
               (code[end - 1] == ' ' || code[end - 1] == '\t')) {
            --end;
        }
        std::size_t begin = end;
        while (begin > 0 && isIdentChar(code[begin - 1])) {
            --begin;
        }
        if (begin < end) {
            return code.substr(begin, end - begin);
        }
    }
    return {};
}

/** "src/sim/driver.hh" -> "driver". */
std::string
stemOf(const std::string &relative)
{
    const std::size_t slash = relative.rfind('/');
    const std::size_t begin =
        slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = relative.rfind('.');
    return relative.substr(begin, dot - begin);
}

} // namespace

void
ruleDeprecatedCall(const RepoTree &tree,
                   std::vector<Finding> &findings)
{
    // Deprecated function name -> stem of its declaring header
    // (the sibling .cc defines the shim and is exempt).
    std::map<std::string, std::string> deprecated;
    for (const SourceFile &file : tree.files) {
        if (!file.isHeader) {
            continue;
        }
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            if (file.code[i].find("[[deprecated") ==
                std::string::npos) {
                continue;
            }
            const std::string name = declaredName(file, i);
            if (!name.empty()) {
                deprecated[name] = stemOf(file.relative);
            }
        }
    }
    if (deprecated.empty()) {
        return;
    }

    for (const SourceFile &file : tree.files) {
        if (!file.isCpp || file.isHeader || file.inTests) {
            continue;
        }
        const std::string stem = stemOf(file.relative);
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];
            for (const auto &[name, decl_stem] : deprecated) {
                if (stem == decl_stem) {
                    continue; // the shim's own definition
                }
                std::size_t pos = 0;
                while ((pos = code.find(name, pos)) !=
                       std::string::npos) {
                    const bool bounded =
                        (pos == 0 ||
                         !isIdentChar(code[pos - 1])) &&
                        (pos + name.size() >= code.size() ||
                         !isIdentChar(code[pos + name.size()]));
                    if (bounded &&
                        !lineAllows(file, i + 1,
                                    "deprecated-call")) {
                        findings.push_back(
                            {"deprecated-call", file.relative,
                             i + 1,
                             "call of deprecated '" + name +
                                 "' outside tests — migrate to "
                                 "the replacement named in its "
                                 "[[deprecated]] message"});
                    }
                    pos += name.size();
                }
            }
        }
    }
}

} // namespace bplint
