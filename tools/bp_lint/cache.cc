#include "bp_lint/cache.hh"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "bp_lint/sarif.hh"

namespace bplint
{

namespace
{

namespace fs = std::filesystem;

/** FNV-1a 64-bit, the same hash the snapshot headers use. */
struct Fnv1a
{
    std::uint64_t state = 1469598103934665603ULL;

    void
    mix(const std::string &text)
    {
        for (const char c : text) {
            state ^= static_cast<unsigned char>(c);
            state *= 1099511628211ULL;
        }
        // Separator so {"ab","c"} and {"a","bc"} differ.
        state ^= 0xff;
        state *= 1099511628211ULL;
    }

    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out;
        for (int shift = 60; shift >= 0; shift -= 4) {
            out += digits[(state >> shift) & 0xf];
        }
        return out;
    }
};

/** Escape tabs/newlines so findings serialize one per line. */
std::string
escapeField(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::optional<std::string>
unescapeField(const std::string &text)
{
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            out += text[i];
            continue;
        }
        if (i + 1 >= text.size()) {
            return std::nullopt;
        }
        switch (text[++i]) {
          case '\\':
            out += '\\';
            break;
          case 't':
            out += '\t';
            break;
          case 'n':
            out += '\n';
            break;
          default:
            return std::nullopt;
        }
    }
    return out;
}

} // namespace

std::string
cacheKey(const fs::path &root,
         const std::vector<std::string> &rules)
{
    // The manifest must be order-stable; forEachLintableFile walks
    // in directory-iteration order, so collect and sort.
    std::map<std::string, std::string> manifest;
    forEachLintableFile(root, [&](const fs::path &path,
                                  const std::string &relative) {
        std::error_code ec;
        const auto size = fs::file_size(path, ec);
        const auto mtime = fs::last_write_time(path, ec);
        std::ostringstream entry;
        entry << size << '|'
              << std::chrono::duration_cast<std::chrono::nanoseconds>(
                     mtime.time_since_epoch())
                     .count();
        manifest[relative] = entry.str();
    });

    Fnv1a digest;
    digest.mix(std::string("bp_lint/") + lintVersion);
    if (rules.empty()) {
        // The full-rule run also depends on the registry: adding a
        // rule must invalidate old entries.
        for (const RuleInfo &rule : allRules()) {
            digest.mix(rule.name);
        }
    } else {
        for (const std::string &rule : rules) {
            digest.mix(rule);
        }
    }
    for (const auto &[relative, entry] : manifest) {
        digest.mix(relative);
        digest.mix(entry);
    }
    return digest.hex();
}

std::optional<std::vector<Finding>>
cacheLoad(const fs::path &dir, const std::string &key)
{
    std::ifstream in(dir / (key + ".lint"), std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::vector<Finding> findings;
    std::string line;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        if (!sawHeader) {
            if (line != std::string("bp_lint-cache ") + lintVersion) {
                return std::nullopt;
            }
            sawHeader = true;
            continue;
        }
        if (line.empty()) {
            continue;
        }
        std::vector<std::string> fields;
        std::size_t start = 0;
        for (int f = 0; f < 3; ++f) {
            const std::size_t tab = line.find('\t', start);
            if (tab == std::string::npos) {
                return std::nullopt;
            }
            fields.push_back(line.substr(start, tab - start));
            start = tab + 1;
        }
        fields.push_back(line.substr(start));

        Finding finding;
        const auto rule = unescapeField(fields[0]);
        const auto file = unescapeField(fields[1]);
        const auto message = unescapeField(fields[3]);
        if (!rule || !file || !message) {
            return std::nullopt;
        }
        finding.rule = *rule;
        finding.file = *file;
        finding.message = *message;
        try {
            finding.line = std::stoull(fields[2]);
        } catch (...) {
            return std::nullopt;
        }
        findings.push_back(std::move(finding));
    }
    if (!sawHeader) {
        return std::nullopt;
    }
    return findings;
}

void
cacheStore(const fs::path &dir, const std::string &key,
           const std::vector<Finding> &findings)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        return;
    }

    // Prune entries for other keys: the cache holds the current
    // tree state, not a history.
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const fs::path &path = entry.path();
        if (path.extension() == ".lint" &&
            path.filename() != key + ".lint") {
            fs::remove(path, ec);
        }
    }

    const fs::path target = dir / (key + ".lint");
    const fs::path staging = dir / (key + ".lint.tmp");
    {
        std::ofstream out(staging, std::ios::binary);
        if (!out) {
            return;
        }
        out << "bp_lint-cache " << lintVersion << "\n";
        for (const Finding &finding : findings) {
            out << escapeField(finding.rule) << '\t'
                << escapeField(finding.file) << '\t'
                << finding.line << '\t'
                << escapeField(finding.message) << "\n";
        }
        if (!out) {
            return;
        }
    }
    fs::rename(staging, target, ec);
}

} // namespace bplint
