/**
 * @file
 * Rule "alloc-untrusted": allocation sizing in layers that parse
 * external input.
 *
 * The trace layer (src/trace/) and the corpus runner
 * (src/sim/corpus*) decode counts out of files a user points the
 * tools at. Sizing an allocation straight from such a decoded count
 * is how a corrupt 8-byte header becomes a multi-gigabyte OOM, so
 * every container reserve() or resize() in those files must carry a
 * `bp_lint: allow(reserve-untrusted)` annotation stating why its
 * count is trusted or bounded (validated against the stream length,
 * clamped to an in-memory size, a caller-chosen constant, ...).
 *
 * The annotation token is shared with the older incarnation of this
 * check (it lived inside banned-identifier and covered reserve()
 * in src/trace/ only), so existing justifications keep working.
 *
 * Matching runs over comment- and string-stripped code, so prose
 * and literals never trip it.
 */

#include "bp_lint/lint.hh"

namespace bplint
{

namespace
{

/** Layers whose allocations size themselves from decoded input. */
bool
parsesUntrustedInput(const SourceFile &file)
{
    return file.relative.rfind("src/trace/", 0) == 0 ||
        file.relative.rfind("src/sim/corpus", 0) == 0;
}

constexpr const char *sizedCalls[] = {".reserve(", ".resize("};

} // namespace

void
ruleAllocUntrusted(const RepoTree &tree,
                   std::vector<Finding> &findings)
{
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp || !parsesUntrustedInput(file)) {
            continue;
        }
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];
            const std::size_t line_no = i + 1;
            for (const char *call : sizedCalls) {
                if (code.find(call) == std::string::npos) {
                    continue;
                }
                if (lineAllows(file, line_no, "reserve-untrusted")) {
                    continue;
                }
                findings.push_back(
                    {"alloc-untrusted", file.relative, line_no,
                     std::string("container ") + (call + 1) +
                         ") in an untrusted-input layer without a "
                         "'bp_lint: allow(reserve-untrusted)' "
                         "annotation explaining why the count is "
                         "trusted or bounded"});
            }
        }
    }
}

} // namespace bplint
