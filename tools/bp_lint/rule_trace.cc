/**
 * @file
 * Rule "trace-literal": TRACE_SCOPE / TRACE_INSTANT / TRACE_COUNTER
 * category and name arguments must be string literals.
 *
 * The tracing hot path (support/tracing.hh) stores those arguments
 * as raw `const char *` without copying, so anything that is not a
 * literal is a lifetime bug waiting to happen — and formatting a
 * name at the call site would put an allocation on a path whose
 * contract is "one branch when disabled". The macros already force
 * literals at compile time via `"" name` concatenation; this rule
 * catches the violation at lint time, with a readable message,
 * before a build is even attempted.
 *
 * Matching runs over comment/string-stripped code (literal bodies
 * are blanked but their quote delimiters survive), so the check is
 * simply: each of the first two macro arguments starts with '"'.
 * `#define` lines are skipped — the macro definitions themselves
 * pass through their parameters unquoted by construction.
 */

#include "bp_lint/lint.hh"

namespace bplint
{

namespace
{

constexpr const char *traceMacros[] = {
    "TRACE_SCOPE",
    "TRACE_INSTANT",
    "TRACE_COUNTER",
};

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

/**
 * The stripped code of lines [line, line+window) joined into one
 * string, so a macro invocation whose argument list wraps across
 * lines can still be parsed from its first line.
 */
std::string
joinedCode(const SourceFile &file, std::size_t index,
           std::size_t window)
{
    std::string joined;
    for (std::size_t i = index;
         i < file.code.size() && i < index + window; ++i) {
        joined += file.code[i];
        joined += ' ';
    }
    return joined;
}

/** Skip spaces/tabs from @p pos; npos at end of text. */
std::size_t
skipBlanks(const std::string &text, std::size_t pos)
{
    return text.find_first_not_of(" \t", pos);
}

/**
 * True when the argument starting at @p pos is a string literal,
 * advancing @p pos past it and the following comma when one exists.
 * On success, @p more says whether a comma (another argument)
 * followed.
 */
bool
consumeLiteralArg(const std::string &text, std::size_t &pos,
                  bool &more)
{
    pos = skipBlanks(text, pos);
    if (pos == std::string::npos || text[pos] != '"') {
        return false;
    }
    const std::size_t close = text.find('"', pos + 1);
    if (close == std::string::npos) {
        return false;
    }
    pos = skipBlanks(text, close + 1);
    more = pos != std::string::npos && text[pos] == ',';
    if (more) {
        ++pos;
    }
    return true;
}

} // namespace

void
ruleTraceLiteral(const RepoTree &tree, std::vector<Finding> &findings)
{
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp) {
            continue;
        }
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];
            const std::size_t line_no = i + 1;
            if (code.find("#define") != std::string::npos) {
                continue; // the macro definitions themselves
            }
            for (const char *macro : traceMacros) {
                std::size_t pos = 0;
                const std::size_t len = std::string(macro).size();
                while ((pos = code.find(macro, pos)) !=
                       std::string::npos) {
                    const std::size_t at = pos;
                    pos += len;
                    // Identifier boundaries: reject TRACE_SCOPED
                    // and X_TRACE_SCOPE.
                    if ((at > 0 && isIdentChar(code[at - 1])) ||
                        (at + len < code.size() &&
                         isIdentChar(code[at + len]))) {
                        continue;
                    }
                    if (lineAllows(file, line_no, "trace-literal")) {
                        continue;
                    }
                    // Parse "(<literal>, <literal>" from the joined
                    // next few lines, starting after the macro name.
                    const std::string joined = joinedCode(file, i, 4);
                    std::size_t cursor =
                        joined.find('(', at + len);
                    if (cursor == std::string::npos) {
                        continue; // not an invocation
                    }
                    ++cursor;
                    bool more = false;
                    const bool category_ok =
                        consumeLiteralArg(joined, cursor, more);
                    const bool name_ok = category_ok && more &&
                        consumeLiteralArg(joined, cursor, more);
                    if (!category_ok || !name_ok) {
                        findings.push_back(
                            {"trace-literal", file.relative, line_no,
                             std::string(macro) +
                                 " category/name must be string "
                                 "literals (stored as raw const "
                                 "char*; no formatting on the hot "
                                 "path)"});
                    }
                }
            }
        }
    }
}

} // namespace bplint
