#include "bp_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bp_lint/rules.hh"

namespace bplint
{

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"cmake-registration",
         "every test_*.cc/bench_*.cc is registered in its "
         "CMakeLists.txt",
         ruleCmakeRegistration},
        {"pragma-once",
         "headers use #pragma once, never BPRED_* guards",
         rulePragmaOnce},
        {"banned-identifier",
         "no rand/strcpy/atoi-style calls, raw new outside "
         "factories, or unannotated trace-layer reserve()",
         ruleBannedIdentifier},
        {"factory-fingerprint",
         "factory scheme names match predictor name() "
         "fingerprint literals",
         ruleFactoryFingerprint},
        {"deprecated-call",
         "[[deprecated]] shims are only called from tests",
         ruleDeprecatedCall},
        {"trace-literal",
         "TRACE_SCOPE/TRACE_INSTANT/TRACE_COUNTER category and "
         "name arguments are string literals",
         ruleTraceLiteral},
        {"simd-isolation",
         "vector intrinsics only in *_simd files, under "
         "#if BPRED_HAVE_AVX2",
         ruleSimdIsolation},
    };
    return rules;
}

namespace
{

namespace fs = std::filesystem;

/**
 * Directories never descended into: VCS state, build trees, editor
 * state, and lint fixtures (which contain violations on purpose —
 * test_bp_lint lints them explicitly).
 */
bool
skipDirectory(const std::string &name)
{
    return name == ".git" || name == ".claude" ||
        name == "fixtures" || name.rfind("build", 0) == 0;
}

bool
hasSuffix(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream stream(text);
    while (std::getline(stream, line)) {
        lines.push_back(line);
    }
    return lines;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char
    };
    State state = State::Code;

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                // An apostrophe directly after an identifier
                // character is a digit separator (1'000'000), not
                // a char literal.
                const bool separator = !out.empty() &&
                    (std::isalnum(static_cast<unsigned char>(
                         out.back())) ||
                     out.back() == '_');
                if (separator) {
                    out += '\'';
                } else {
                    state = State::Char;
                    out += '\'';
                }
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0' && next != '\n') {
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::string
canonicalFingerprint(const std::string &text)
{
    std::string canonical;
    for (const char c : text) {
        if (c >= 'a' && c <= 'z') {
            canonical += c;
        } else if (c >= 'A' && c <= 'Z') {
            canonical += static_cast<char>(c - 'A' + 'a');
        } else if (c >= '0' && c <= '9') {
            canonical += c;
        }
    }
    return canonical;
}

bool
lineAllows(const SourceFile &file, std::size_t line,
           const std::string &rule)
{
    const std::string needle = "bp_lint: allow(" + rule + ")";
    if (line < 1 || line > file.lines.size()) {
        return false;
    }
    if (file.lines[line - 1].find(needle) != std::string::npos) {
        return true;
    }
    // Walk up through the contiguous comment block directly above
    // the flagged line, so multi-line justifications work.
    for (std::size_t i = line - 1; i >= 1; --i) {
        const std::string &above = file.lines[i - 1];
        const std::size_t text = above.find_first_not_of(" \t");
        if (text == std::string::npos ||
            (above.compare(text, 2, "//") != 0 &&
             above.compare(text, 1, "*") != 0)) {
            break;
        }
        if (above.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

RepoTree
loadTree(const fs::path &root)
{
    if (!fs::is_directory(root)) {
        throw std::runtime_error("bp_lint: not a directory: " +
                                 root.string());
    }

    RepoTree tree;
    tree.root = fs::canonical(root);

    auto options = fs::directory_options::skip_permission_denied;
    for (auto it = fs::recursive_directory_iterator(tree.root,
                                                    options);
         it != fs::recursive_directory_iterator(); ++it) {
        const fs::path &path = it->path();
        if (it->is_directory()) {
            if (skipDirectory(path.filename().string())) {
                it.disable_recursion_pending();
            }
            continue;
        }
        if (!it->is_regular_file()) {
            continue;
        }
        const std::string name = path.filename().string();
        const bool is_cmake = name == "CMakeLists.txt";
        const bool is_header =
            hasSuffix(name, ".hh") || hasSuffix(name, ".hpp");
        const bool is_source =
            hasSuffix(name, ".cc") || hasSuffix(name, ".cpp");
        if (!is_cmake && !is_header && !is_source) {
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        std::ostringstream contents;
        contents << in.rdbuf();
        const std::string text = contents.str();

        SourceFile file;
        file.relative =
            fs::relative(path, tree.root).generic_string();
        file.name = name;
        file.lines = splitLines(text);
        file.isHeader = is_header;
        file.isCpp = is_header || is_source;
        if (file.isCpp) {
            file.code = splitLines(stripCommentsAndStrings(text));
            file.code.resize(file.lines.size());
        }
        file.inTests = file.relative.rfind("tests/", 0) == 0;
        tree.files.push_back(std::move(file));
    }

    std::sort(tree.files.begin(), tree.files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relative < b.relative;
              });
    return tree;
}

std::vector<Finding>
runLint(const RepoTree &tree)
{
    return runLint(tree, {});
}

std::vector<Finding>
runLint(const RepoTree &tree, const std::vector<std::string> &rules)
{
    std::vector<Finding> findings;
    for (const RuleInfo &rule : allRules()) {
        if (!rules.empty() &&
            std::find(rules.begin(), rules.end(), rule.name) ==
                rules.end()) {
            continue;
        }
        rule.run(tree, findings);
    }
    return findings;
}

} // namespace bplint
