#include "bp_lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bp_lint/model.hh"
#include "bp_lint/rules.hh"

namespace bplint
{

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> rules = {
        {"cmake-registration",
         "every test_*.cc/bench_*.cc is registered in its "
         "CMakeLists.txt",
         ruleCmakeRegistration},
        {"pragma-once",
         "headers use #pragma once, never BPRED_* guards",
         rulePragmaOnce},
        {"banned-identifier",
         "no rand/strcpy/atoi-style calls or raw new outside "
         "factories",
         ruleBannedIdentifier},
        {"alloc-untrusted",
         "reserve()/resize() in untrusted-input layers "
         "(src/trace, src/sim/corpus*) carry a "
         "'bp_lint: allow(reserve-untrusted)' justification",
         ruleAllocUntrusted},
        {"factory-fingerprint",
         "factory scheme names match predictor name() "
         "fingerprint literals",
         ruleFactoryFingerprint},
        {"deprecated-call",
         "[[deprecated]] shims are only called from tests",
         ruleDeprecatedCall},
        {"trace-literal",
         "TRACE_SCOPE/TRACE_INSTANT/TRACE_COUNTER category and "
         "name arguments are string literals",
         ruleTraceLiteral},
        {"simd-isolation",
         "vector intrinsics only in *_simd files, under "
         "#if BPRED_HAVE_AVX2",
         ruleSimdIsolation},
        {"layering",
         "#include edges follow the declared module DAG "
         "(support -> trace -> predictors -> core -> ... -> serve)",
         ruleLayering},
        {"scheme-coverage",
         "every factory scheme has snapshot overrides, a block "
         "kernel or scalar-only waiver, and contract-test coverage",
         ruleSchemeCoverage},
        {"lock-discipline",
         "fields annotated guarded_by(<mutex>) are only touched "
         "inside a scope holding that mutex",
         ruleLockDiscipline},
        {"atomic-order",
         "std::atomic operations in src/support and src/serve name "
         "an explicit memory_order",
         ruleAtomicOrder},
    };
    return rules;
}

namespace
{

namespace fs = std::filesystem;

/**
 * Directories never descended into: VCS state, build trees, editor
 * state, and lint fixtures (which contain violations on purpose —
 * test_bp_lint lints them explicitly).
 */
bool
skipDirectory(const std::string &name)
{
    return name == ".git" || name == ".claude" ||
        name == "fixtures" || name.rfind("build", 0) == 0;
}

bool
hasSuffix(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
        text.compare(text.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream stream(text);
    while (std::getline(stream, line)) {
        lines.push_back(line);
    }
    return lines;
}

/**
 * When text[i] is the opening '"' of a raw string literal
 * (R"delim(...)delim", optionally with a u8/u/U/L encoding prefix),
 * return the index one past the closing '"'; otherwise return 0.
 * Unterminated raw strings swallow the rest of the file, matching
 * compiler behaviour.
 */
std::size_t
rawStringEnd(const std::string &text, std::size_t i)
{
    if (i == 0 || text[i] != '"' || text[i - 1] != 'R') {
        return 0;
    }
    // The char before the R / u8R / uR / UR / LR prefix must not
    // extend an identifier (FOOBAR"..." is not a raw string).
    std::size_t start = i - 1;
    if (start >= 2 && text[start - 2] == 'u' &&
        text[start - 1] == '8') {
        start -= 2;
    } else if (start >= 1 &&
               (text[start - 1] == 'u' || text[start - 1] == 'U' ||
                text[start - 1] == 'L')) {
        start -= 1;
    }
    if (start > 0) {
        const char before = text[start - 1];
        if (std::isalnum(static_cast<unsigned char>(before)) ||
            before == '_') {
            return 0;
        }
    }
    // Delimiter: at most 16 chars between '"' and '(', none of
    // which may be a space, paren, backslash, quote, or newline.
    const std::size_t open = text.find('(', i + 1);
    if (open == std::string::npos || open - i - 1 > 16) {
        return 0;
    }
    for (std::size_t j = i + 1; j < open; ++j) {
        const char c = text[j];
        if (c == ' ' || c == ')' || c == '\\' || c == '"' ||
            c == '\n' || c == '\t') {
            return 0;
        }
    }
    const std::string terminator =
        ")" + text.substr(i + 1, open - i - 1) + "\"";
    const std::size_t end = text.find(terminator, open + 1);
    if (end == std::string::npos) {
        return text.size();
    }
    return end + terminator.size();
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());

    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char
    };
    State state = State::Code;

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == '"' && rawStringEnd(text, i) != 0) {
                // Raw string literal: blank the whole body
                // (newlines preserved), keeping the outer quotes so
                // literal-shape rules still see a string here.
                const std::size_t end = rawStringEnd(text, i);
                out += '"';
                for (std::size_t j = i + 1; j < end; ++j) {
                    out += text[j] == '\n' ? '\n' : ' ';
                }
                if (end > i + 1 && end <= text.size() &&
                    text[end - 1] == '"') {
                    out.back() = '"';
                }
                i = end - 1;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                // An apostrophe directly after an identifier
                // character is a digit separator (1'000'000), not
                // a char literal.
                const bool separator = !out.empty() &&
                    (std::isalnum(static_cast<unsigned char>(
                         out.back())) ||
                     out.back() == '_');
                if (separator) {
                    out += '\'';
                } else {
                    state = State::Char;
                    out += '\'';
                }
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0' && next != '\n') {
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::string
canonicalFingerprint(const std::string &text)
{
    std::string canonical;
    for (const char c : text) {
        if (c >= 'a' && c <= 'z') {
            canonical += c;
        } else if (c >= 'A' && c <= 'Z') {
            canonical += static_cast<char>(c - 'A' + 'a');
        } else if (c >= '0' && c <= '9') {
            canonical += c;
        }
    }
    return canonical;
}

bool
lineAllows(const SourceFile &file, std::size_t line,
           const std::string &rule)
{
    const std::string needle = "bp_lint: allow(" + rule + ")";
    if (line < 1 || line > file.lines.size()) {
        return false;
    }
    if (file.lines[line - 1].find(needle) != std::string::npos) {
        return true;
    }
    // Walk up through the contiguous comment block directly above
    // the flagged line, so multi-line justifications work.
    for (std::size_t i = line - 1; i >= 1; --i) {
        const std::string &above = file.lines[i - 1];
        const std::size_t text = above.find_first_not_of(" \t");
        if (text == std::string::npos ||
            (above.compare(text, 2, "//") != 0 &&
             above.compare(text, 1, "*") != 0)) {
            break;
        }
        if (above.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

void
forEachLintableFile(
    const fs::path &root,
    const std::function<void(const fs::path &,
                             const std::string &)> &visit)
{
    if (!fs::is_directory(root)) {
        throw std::runtime_error("bp_lint: not a directory: " +
                                 root.string());
    }
    const fs::path canonical = fs::canonical(root);

    auto options = fs::directory_options::skip_permission_denied;
    for (auto it = fs::recursive_directory_iterator(canonical,
                                                    options);
         it != fs::recursive_directory_iterator(); ++it) {
        const fs::path &path = it->path();
        if (it->is_directory()) {
            if (skipDirectory(path.filename().string())) {
                it.disable_recursion_pending();
            }
            continue;
        }
        if (!it->is_regular_file()) {
            continue;
        }
        const std::string name = path.filename().string();
        const bool is_cmake = name == "CMakeLists.txt";
        const bool is_header =
            hasSuffix(name, ".hh") || hasSuffix(name, ".hpp");
        const bool is_source =
            hasSuffix(name, ".cc") || hasSuffix(name, ".cpp");
        if (!is_cmake && !is_header && !is_source) {
            continue;
        }
        visit(path, fs::relative(path, canonical).generic_string());
    }
}

RepoTree
loadTree(const fs::path &root)
{
    RepoTree tree;
    tree.root = fs::canonical(root);

    forEachLintableFile(tree.root, [&](const fs::path &path,
                                       const std::string &relative) {
        const std::string name = path.filename().string();
        const bool is_header =
            hasSuffix(name, ".hh") || hasSuffix(name, ".hpp");
        const bool is_source =
            hasSuffix(name, ".cc") || hasSuffix(name, ".cpp");

        std::ifstream in(path, std::ios::binary);
        std::ostringstream contents;
        contents << in.rdbuf();
        const std::string text = contents.str();

        SourceFile file;
        file.relative = relative;
        file.name = name;
        file.lines = splitLines(text);
        file.isHeader = is_header;
        file.isCpp = is_header || is_source;
        if (file.isCpp) {
            file.code = splitLines(stripCommentsAndStrings(text));
            file.code.resize(file.lines.size());
        }
        file.inTests = file.relative.rfind("tests/", 0) == 0;
        tree.files.push_back(std::move(file));
    });

    std::sort(tree.files.begin(), tree.files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relative < b.relative;
              });
    tree.model = std::make_shared<ProjectModel>(buildModel(tree));
    return tree;
}

std::vector<Finding>
runLint(const RepoTree &tree)
{
    return runLint(tree, {});
}

std::vector<Finding>
runLint(const RepoTree &tree, const std::vector<std::string> &rules)
{
    std::vector<Finding> findings;
    for (const RuleInfo &rule : allRules()) {
        if (!rules.empty() &&
            std::find(rules.begin(), rules.end(), rule.name) ==
                rules.end()) {
            continue;
        }
        rule.run(tree, findings);
    }
    return findings;
}

} // namespace bplint
