/**
 * @file
 * Rule "atomic-order": std::atomic operations in src/support and
 * src/serve must name an explicit memory_order.
 *
 * The tracing fast path is lock-free by design and its performance
 * depends on relaxed ordering (tracing.hh documents the protocol);
 * the serving engine is the other place concurrency lives. In both,
 * an atomic op written without an order means implicit seq_cst —
 * either an accidental fence on a hot path (perf bug) or an
 * undocumented reliance on the strongest ordering (intent bug).
 * Either way the author should have to spell it.
 *
 * Two checks, over the stripped code of files under src/support/
 * and src/serve/:
 *
 *  - member atomic ops (.load( / ->store( / fetch_* / exchange /
 *    compare_exchange_*) must mention memory_order within the call
 *    (the directive line plus a three-line continuation window);
 *    free functions like std::exchange are not matched — only
 *    receiver syntax;
 *  - variables *declared* std::atomic in those files must not be
 *    assigned (=, +=, -=) or incremented/decremented — those
 *    operators cannot take an order argument, so such sites must
 *    use .store()/.fetch_add() with an explicit order instead.
 *
 * Implicit reads through the conversion operator (`if (flag)`) are
 * out of reach for a line heuristic and deliberately not flagged.
 * Escapes: `bp_lint: allow(atomic-order)` with a reason.
 */

#include "bp_lint/lint.hh"
#include "bp_lint/model.hh"

#include <set>

namespace bplint
{

namespace
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

bool
inScope(const SourceFile &file)
{
    return file.relative.rfind("src/support/", 0) == 0 ||
        file.relative.rfind("src/serve/", 0) == 0;
}

/** Declared name on an atomic declaration line. */
std::string
declaredName(const std::string &code)
{
    // Skip past the template argument list so `std::atomic<bool>`
    // itself is not mistaken for the variable.
    std::size_t after = code.find("std::atomic");
    if (after == std::string::npos) {
        return "";
    }
    after += std::string("std::atomic").size();
    int depth = 0;
    while (after < code.size()) {
        if (code[after] == '<') {
            ++depth;
        } else if (code[after] == '>') {
            --depth;
            if (depth == 0) {
                ++after;
                break;
            }
        } else if (depth == 0 && code[after] != ' ') {
            break; // no template args (atomic_flag style)
        }
        ++after;
    }
    std::size_t stop = code.find_first_of("={;(", after);
    if (stop == std::string::npos) {
        stop = code.size();
    }
    std::size_t end = stop;
    while (end > after &&
           (code[end - 1] == ' ' || code[end - 1] == '\t')) {
        --end;
    }
    std::size_t begin = end;
    while (begin > after && isIdentChar(code[begin - 1])) {
        --begin;
    }
    return code.substr(begin, end - begin);
}

const std::vector<std::string> &
atomicOps()
{
    static const std::vector<std::string> ops = {
        "load",
        "store",
        "exchange",
        "fetch_add",
        "fetch_sub",
        "fetch_and",
        "fetch_or",
        "fetch_xor",
        "compare_exchange_weak",
        "compare_exchange_strong",
    };
    return ops;
}

} // namespace

void
ruleAtomicOrder(const RepoTree &tree, std::vector<Finding> &findings)
{
    // Names declared std::atomic anywhere in the scoped dirs; used
    // for the operator-form check across all scoped files (the
    // extern declaration lives in the header, uses in the .cc).
    std::set<std::string> atomicNames;
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp || !inScope(file)) {
            continue;
        }
        for (const std::string &code : file.code) {
            if (code.find("std::atomic") == std::string::npos) {
                continue;
            }
            const std::string name = declaredName(code);
            if (!name.empty()) {
                atomicNames.insert(name);
            }
        }
    }

    for (const SourceFile &file : tree.files) {
        if (!file.isCpp || !inScope(file)) {
            continue;
        }
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];

            // Member atomic ops: receiver syntax only.
            for (const std::string &op : atomicOps()) {
                for (const std::string prefix : {".", ">"}) {
                    const std::string needle = prefix + op + "(";
                    std::size_t at = code.find(needle);
                    if (at == std::string::npos) {
                        continue;
                    }
                    std::string window = code;
                    for (std::size_t j = i + 1;
                         j < file.code.size() && j < i + 4; ++j) {
                        window += ' ';
                        window += file.code[j];
                    }
                    if (window.find("memory_order", at) !=
                        std::string::npos) {
                        continue;
                    }
                    if (lineAllows(file, i + 1, "atomic-order")) {
                        continue;
                    }
                    findings.push_back(
                        {"atomic-order", file.relative, i + 1,
                         "atomic ." + op +
                             "() without an explicit memory_order "
                             "(implicit seq_cst; spell the "
                             "ordering)"});
                }
            }

            // Operator form on declared atomic names: =, +=, -=,
            // ++, -- cannot take an order argument.
            for (const std::string &name : atomicNames) {
                std::size_t pos = 0;
                while ((pos = code.find(name, pos)) !=
                       std::string::npos) {
                    const bool left = pos == 0 ||
                        !isIdentChar(code[pos - 1]);
                    std::size_t after = pos + name.size();
                    if (!left || (after < code.size() &&
                                  isIdentChar(code[after]))) {
                        ++pos;
                        continue;
                    }
                    pos = after;
                    while (after < code.size() &&
                           (code[after] == ' ' ||
                            code[after] == '\t')) {
                        ++after;
                    }
                    const std::string rest = code.substr(
                        after, std::min<std::size_t>(
                                   2, code.size() - after));
                    const bool preInc = pos >= name.size() + 2 &&
                        (code.compare(pos - name.size() - 2, 2,
                                      "++") == 0 ||
                         code.compare(pos - name.size() - 2, 2,
                                      "--") == 0);
                    const bool assign =
                        (rest.rfind("=", 0) == 0 &&
                         rest != "==") ||
                        rest == "+=" || rest == "-=" ||
                        rest == "++" || rest == "--";
                    if (!assign && !preInc) {
                        continue;
                    }
                    // Skip the declaration itself
                    // (std::atomic<...> name = ... is an init,
                    // not an op).
                    if (code.find("std::atomic") !=
                        std::string::npos) {
                        continue;
                    }
                    if (lineAllows(file, i + 1, "atomic-order")) {
                        continue;
                    }
                    findings.push_back(
                        {"atomic-order", file.relative, i + 1,
                         "operator access to std::atomic '" + name +
                             "' (implicit seq_cst); use "
                             ".store()/.fetch_add() with an "
                             "explicit memory_order"});
                }
            }
        }
    }
}

} // namespace bplint
