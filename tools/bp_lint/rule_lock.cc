/**
 * @file
 * Rule "lock-discipline": fields annotated
 * `// bp_lint: guarded_by(<mutex>)` may only be touched inside a
 * scope that constructed a lock on that mutex.
 *
 * The serving engine's correctness hinges on shard-local mutex
 * discipline (predictor_pool.hh documents which mutex covers which
 * fields), and the tracing recorder has exactly one registry mutex.
 * Those contracts lived in comments; this rule machine-checks them
 * the same brace-scope-heuristic way rule_factory parses the scheme
 * table:
 *
 *  - an *access* is any identifier occurrence of an annotated name
 *    in the declaring file or a file directly including the
 *    declaring header;
 *  - it is *guarded* when some earlier line in the same file
 *    constructs a std::lock_guard / unique_lock / scoped_lock
 *    naming the annotated mutex, and the scope containing that
 *    construction is the access's scope or an ancestor of it
 *    (RAII: the lock is still held anywhere below its scope);
 *  - matches at column 0 are skipped — in this tree's gem5-style
 *    formatting those are function *definitions* of annotated
 *    accessor functions, not accesses;
 *  - documented lock-free paths escape with
 *    `bp_lint: allow(lock-discipline)` plus a reason.
 *
 * This is deliberately per-file and flow-insensitive: it cannot see
 * a lock held by a caller. The escape hatch is the annotation
 * itself — helpers that require a caller-held lock stay
 * unannotated and are covered at their call sites.
 */

#include "bp_lint/lint.hh"
#include "bp_lint/model.hh"

namespace bplint
{

namespace
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

std::size_t
findIdent(const std::string &code, const std::string &name,
          std::size_t from = 0)
{
    std::size_t pos = from;
    while ((pos = code.find(name, pos)) != std::string::npos) {
        const bool left = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t after = pos + name.size();
        const bool right =
            after >= code.size() || !isIdentChar(code[after]);
        if (left && right) {
            return pos;
        }
        ++pos;
    }
    return std::string::npos;
}

/** One lock construction site: the scope it lives in. */
struct LockSite
{
    std::size_t line = 0; // 0-based
    int scope = -1;
};

/**
 * Collect every line constructing a lock on @p mutexName:
 * lock_guard/unique_lock/scoped_lock plus the mutex identifier on
 * the same stripped line.
 */
std::vector<LockSite>
lockSites(const SourceFile &file, const ScopeIndex &scopes,
          const std::string &mutexName)
{
    std::vector<LockSite> sites;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string &code = file.code[i];
        const std::size_t at =
            std::min({code.find("lock_guard"),
                      code.find("unique_lock"),
                      code.find("scoped_lock")});
        if (at == std::string::npos) {
            continue;
        }
        if (findIdent(code, mutexName) == std::string::npos) {
            continue;
        }
        sites.push_back({i, scopes.innermostAt(i, at)});
    }
    return sites;
}

} // namespace

void
ruleLockDiscipline(const RepoTree &tree,
                   std::vector<Finding> &findings)
{
    const ProjectModel &model = *tree.model;

    for (const GuardedEntity &entity : model.guardedEntities) {
        for (std::size_t f = 0; f < tree.files.size(); ++f) {
            const SourceFile &file = tree.files[f];
            const FileModel &artifacts = model.files[f];
            if (!file.isCpp ||
                !usesHeader(file, artifacts, entity.file)) {
                continue;
            }
            const std::vector<LockSite> sites =
                lockSites(file, artifacts.scopes,
                          entity.mutexName);

            for (std::size_t i = 0; i < file.code.size(); ++i) {
                // The annotated declaration itself is not an
                // access.
                if (file.relative == entity.file &&
                    (i + 1 == entity.line || i + 2 == entity.line)) {
                    continue;
                }
                std::size_t col = 0;
                bool flagged = false;
                while (!flagged &&
                       (col = findIdent(file.code[i], entity.name,
                                        col)) !=
                           std::string::npos) {
                    const std::size_t at = col;
                    col += entity.name.size();
                    if (at == 0) {
                        continue; // gem5-style definition line
                    }
                    if (lineAllows(file, i + 1,
                                   "lock-discipline")) {
                        continue;
                    }
                    const int scope =
                        artifacts.scopes.innermostAt(i, at);
                    bool guarded = false;
                    for (const LockSite &site : sites) {
                        if (site.line <= i &&
                            artifacts.scopes.isAncestorOrSelf(
                                site.scope, scope) &&
                            // A lock at top level (-1) guards
                            // nothing: -1 means "not in any
                            // scope", not "global lock".
                            site.scope >= 0) {
                            guarded = true;
                            break;
                        }
                    }
                    if (!guarded) {
                        findings.push_back(
                            {"lock-discipline", file.relative,
                             i + 1,
                             "'" + entity.name +
                                 "' is guarded_by(" +
                                 entity.mutexName +
                                 ") (declared at " + entity.file +
                                 ") but this access is outside "
                                 "any scope holding it"});
                        flagged = true;
                    }
                }
            }
        }
    }
}

} // namespace bplint
