/**
 * @file
 * Rule "scheme-coverage": every scheme in the factory table must be
 * fully wired, not just constructible.
 *
 * PR 8 found seven schemes that had sat in listSchemes() for five
 * PRs without snapshot support: the factory happily built them, the
 * serving engine happily cached them, and the first checkpoint
 * round-trip silently produced an empty predictor. "Registered"
 * must mean more than "has a make_unique branch". Per scheme the
 * rule checks, against the project model:
 *
 *  1. the primary class the factory constructs for the scheme (the
 *     first make_unique in its branch) declares saveState AND
 *     loadState itself — inherited defaults do not count, because
 *     the base-class default is exactly the empty-snapshot bug this
 *     rule exists to catch;
 *  2. the class hierarchy provides a block-replay kernel
 *     (replayBlock / block_kernel mention), or factory.cc carries
 *     an explicit `bp_lint: scalar-only(<scheme>)` waiver saying
 *     the scalar path is intentional;
 *  3. the scheme appears in test_predictor_contract's sweep, so the
 *     contract suite actually exercises it.
 *
 * Findings anchor to the scheme's listSchemes() table line.
 */

#include "bp_lint/lint.hh"
#include "bp_lint/model.hh"

namespace bplint
{

namespace
{

/** True when the contract test mentions "<scheme>:" or "<scheme>". */
bool
contractCovers(const SourceFile &contract, const std::string &scheme)
{
    const std::string spec = "\"" + scheme + ":";
    const std::string bare = "\"" + scheme + "\"";
    for (const std::string &line : contract.lines) {
        if (line.find(spec) != std::string::npos ||
            line.find(bare) != std::string::npos) {
            return true;
        }
    }
    return false;
}

} // namespace

void
ruleSchemeCoverage(const RepoTree &tree,
                   std::vector<Finding> &findings)
{
    const ProjectModel &model = *tree.model;
    if (!model.hasFactory || model.schemes.empty()) {
        return; // factory-fingerprint reports the missing table
    }

    const SourceFile *contract = nullptr;
    for (const SourceFile &file : tree.files) {
        if (file.relative == "tests/test_predictor_contract.cc") {
            contract = &file;
        }
    }

    const SourceFile *factory = nullptr;
    for (const SourceFile &file : tree.files) {
        if (file.relative == model.factoryFile) {
            factory = &file;
        }
    }

    for (const SchemeFact &scheme : model.schemes) {
        if (factory &&
            lineAllows(*factory, scheme.line, "scheme-coverage")) {
            continue;
        }

        if (scheme.classes.empty()) {
            findings.push_back(
                {"scheme-coverage", model.factoryFile, scheme.line,
                 "scheme '" + scheme.name +
                     "' has no makePredictor() branch constructing "
                     "a predictor class"});
            continue;
        }
        const std::string &primary = scheme.classes.front();

        // 1. Snapshot overrides, declared by the primary class
        //    itself.
        for (const char *method : {"saveState", "loadState"}) {
            if (!model.classDeclares(tree, primary, method)) {
                findings.push_back(
                    {"scheme-coverage", model.factoryFile,
                     scheme.line,
                     "scheme '" + scheme.name + "': class " +
                         primary + " does not declare " + method +
                         "() itself (inherited defaults produce "
                         "empty snapshots)"});
            }
        }

        // 2. Block kernel somewhere in the hierarchy, or an
        //    explicit scalar-only waiver.
        const bool waived =
            model.scalarOnlyWaivers.count(scheme.name) != 0;
        const bool hasKernel =
            model.hierarchyMentions(tree, primary, "replayBlock") ||
            model.hierarchyMentions(tree, primary, "block_kernel");
        if (!waived && !hasKernel) {
            findings.push_back(
                {"scheme-coverage", model.factoryFile, scheme.line,
                 "scheme '" + scheme.name + "': hierarchy of " +
                     primary +
                     " provides no replayBlock/block_kernel and "
                     "factory.cc declares no bp_lint: scalar-only(" +
                     scheme.name + ") waiver"});
        } else if (waived && hasKernel) {
            findings.push_back(
                {"scheme-coverage", model.factoryFile,
                 model.scalarOnlyWaivers.at(scheme.name),
                 "scheme '" + scheme.name +
                     "' declares a scalar-only waiver but its "
                     "hierarchy has a block kernel — drop the "
                     "stale waiver"});
        }

        // 3. Contract-test sweep coverage.
        if (contract && !contractCovers(*contract, scheme.name)) {
            findings.push_back(
                {"scheme-coverage", model.factoryFile, scheme.line,
                 "scheme '" + scheme.name +
                     "' does not appear in "
                     "test_predictor_contract's sweep"});
        }
    }
}

} // namespace bplint
