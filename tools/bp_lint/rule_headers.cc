/**
 * @file
 * Rule "pragma-once": every header uses `#pragma once`, and none
 * carries an old-style BPRED_* include guard.
 *
 * Mixed guard styles invite the classic copy-paste failure: a
 * duplicated guard macro silently empties the second header it
 * guards. One convention, machine-enforced, removes the class of
 * bug entirely.
 */

#include "bp_lint/lint.hh"

namespace bplint
{

namespace
{

bool
isGuardIfndef(const std::string &line)
{
    // "#ifndef BPRED_..." (allowing leading/interior whitespace).
    const std::size_t hash = line.find('#');
    if (hash == std::string::npos) {
        return false;
    }
    std::size_t pos = line.find_first_not_of(" \t", hash + 1);
    if (pos == std::string::npos ||
        line.compare(pos, 6, "ifndef") != 0) {
        return false;
    }
    pos = line.find_first_not_of(" \t", pos + 6);
    return pos != std::string::npos &&
        line.compare(pos, 6, "BPRED_") == 0;
}

} // namespace

void
rulePragmaOnce(const RepoTree &tree, std::vector<Finding> &findings)
{
    for (const SourceFile &file : tree.files) {
        if (!file.isHeader) {
            continue;
        }
        // Scan stripped code, not raw text: "#pragma once" inside
        // a comment must not satisfy the rule.
        bool has_pragma = false;
        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &line = file.code[i];
            if (line.find("#pragma once") != std::string::npos) {
                has_pragma = true;
            }
            if (isGuardIfndef(line)) {
                findings.push_back(
                    {"pragma-once", file.relative, i + 1,
                     "old-style BPRED_* include guard; use "
                     "#pragma once"});
            }
        }
        if (!has_pragma) {
            findings.push_back({"pragma-once", file.relative, 0,
                                "header lacks #pragma once"});
        }
    }
}

} // namespace bplint
