/**
 * @file
 * Rule "banned-identifier": library calls that have no place on a
 * deterministic, bounds-checked simulation path.
 *
 * - rand/srand: all randomness flows through bpred::Rng with
 *   explicit seeds; hidden global RNG state breaks bit
 *   reproducibility.
 * - strcpy/strcat/sprintf/gets: unbounded C string writes.
 * - atoi/atol/atof: silently return 0 on garbage — a malformed
 *   spec must be a fatal() diagnostic, never a zero-sized table.
 * - raw `new`: ownership outside factories and tests must flow
 *   through std::make_unique so no error path leaks.
 *
 * Allocation sizing from decoded counts is its own rule now
 * (alloc-untrusted, rule_alloc.cc); it also covers resize() and
 * the corpus runner.
 *
 * Matching runs over comment- and string-stripped code, so prose
 * and literals never trip it.
 */

#include "bp_lint/lint.hh"

namespace bplint
{

namespace
{

struct BannedCall
{
    const char *name;
    const char *reason;
};

constexpr BannedCall bannedCalls[] = {
    {"rand", "use bpred::Rng with an explicit seed"},
    {"srand", "use bpred::Rng with an explicit seed"},
    {"strcpy", "unbounded C string copy; use std::string"},
    {"strcat", "unbounded C string append; use std::string"},
    {"sprintf", "unbounded format write; use std::string streams"},
    {"gets", "unbounded read; use std::getline"},
    {"atoi", "returns 0 on garbage; parse with fatal() diagnostics"},
    {"atol", "returns 0 on garbage; parse with fatal() diagnostics"},
    {"atof", "returns 0 on garbage; parse with fatal() diagnostics"},
};

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_';
}

/**
 * True when code[pos..] is a call of @p name: the identifier
 * followed (after spaces) by '(' and not reached via member access
 * or a non-std qualifier.
 */
bool
isBannedCallAt(const std::string &code, std::size_t pos,
               const std::string &name)
{
    // Identifier boundary on the left.
    if (pos > 0 && isIdentChar(code[pos - 1])) {
        return false;
    }
    // '(' after the identifier.
    std::size_t after = pos + name.size();
    while (after < code.size() &&
           (code[after] == ' ' || code[after] == '\t')) {
        ++after;
    }
    if (after >= code.size() || code[after] != '(') {
        return false;
    }
    // Member access (x.rand(), x->rand()) is another type's method.
    if (pos >= 1 && code[pos - 1] == '.') {
        return false;
    }
    if (pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>') {
        return false;
    }
    // Qualified: only std:: (and global ::) forms are the banned
    // libc functions; Other::rand() is unrelated.
    if (pos >= 2 && code[pos - 2] == ':' && code[pos - 1] == ':') {
        std::size_t qual_end = pos - 2;
        std::size_t qual_begin = qual_end;
        while (qual_begin > 0 && isIdentChar(code[qual_begin - 1])) {
            --qual_begin;
        }
        const std::string qualifier =
            code.substr(qual_begin, qual_end - qual_begin);
        return qualifier.empty() || qualifier == "std";
    }
    return true;
}

/** True when code[pos..] starts a raw new-expression. */
bool
isRawNewAt(const std::string &code, std::size_t pos)
{
    if (pos > 0 && isIdentChar(code[pos - 1])) {
        return false;
    }
    // "operator new" overloads are declarations, not allocations.
    if (pos >= 9 &&
        code.compare(pos - 9, 8, "operator") == 0) {
        return false;
    }
    const std::size_t after = pos + 3;
    if (after >= code.size() || isIdentChar(code[after])) {
        return false;
    }
    // Require something allocatable after: an identifier or '('.
    const std::size_t next =
        code.find_first_not_of(" \t", after);
    return next != std::string::npos &&
        (isIdentChar(code[next]) || code[next] == '(');
}

} // namespace

void
ruleBannedIdentifier(const RepoTree &tree,
                     std::vector<Finding> &findings)
{
    for (const SourceFile &file : tree.files) {
        if (!file.isCpp) {
            continue;
        }
        const bool new_exempt = file.inTests ||
            file.relative.find("factory") != std::string::npos;

        for (std::size_t i = 0; i < file.code.size(); ++i) {
            const std::string &code = file.code[i];
            const std::size_t line_no = i + 1;

            for (const BannedCall &banned : bannedCalls) {
                std::size_t pos = 0;
                while ((pos = code.find(banned.name, pos)) !=
                       std::string::npos) {
                    if (isBannedCallAt(code, pos, banned.name) &&
                        !lineAllows(file, line_no,
                                    "banned-identifier")) {
                        findings.push_back(
                            {"banned-identifier", file.relative,
                             line_no,
                             std::string("call to banned '") +
                                 banned.name + "': " +
                                 banned.reason});
                    }
                    pos += std::string(banned.name).size();
                }
            }

            if (!new_exempt) {
                std::size_t pos = 0;
                while ((pos = code.find("new", pos)) !=
                       std::string::npos) {
                    if (isRawNewAt(code, pos) &&
                        !lineAllows(file, line_no,
                                    "banned-identifier")) {
                        findings.push_back(
                            {"banned-identifier", file.relative,
                             line_no,
                             "raw new outside factories/tests; "
                             "use std::make_unique"});
                    }
                    pos += 3;
                }
            }
        }
    }
}

} // namespace bplint
