#include "bp_lint/sarif.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bplint
{

const char *const lintVersion = "2.0.0";

namespace
{

/** JSON string escape (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toSarif(const std::vector<Finding> &findings)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/"
           "oasis-tcs/sarif-spec/master/Schemata/"
           "sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"bp_lint\",\n"
        << "          \"version\": \"" << lintVersion << "\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/bp_lint\",\n"
        << "          \"rules\": [\n";
    const std::vector<RuleInfo> &rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\n"
            << "              \"id\": \"" << rules[i].name
            << "\",\n"
            << "              \"shortDescription\": { \"text\": \""
            << jsonEscape(rules[i].summary) << "\" }\n"
            << "            }" << (i + 1 < rules.size() ? "," : "")
            << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &finding = findings[i];
        out << "        {\n"
            << "          \"ruleId\": \""
            << jsonEscape(finding.rule) << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": \""
            << jsonEscape(finding.message) << "\" },\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": { \"uri\": \""
            << jsonEscape(finding.file) << "\" }";
        if (finding.line >= 1) {
            out << ",\n"
                << "                \"region\": { \"startLine\": "
                << finding.line << " }";
        }
        out << "\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }" << (i + 1 < findings.size() ? "," : "")
            << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

void
writeSarif(const std::vector<Finding> &findings,
           const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw std::runtime_error("cannot open SARIF output: " +
                                 path);
    }
    out << toSarif(findings);
    if (!out) {
        throw std::runtime_error("failed writing SARIF output: " +
                                 path);
    }
}

} // namespace bplint
