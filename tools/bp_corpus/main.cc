/**
 * @file
 * bp_corpus — replay a directory of branch traces through a grid of
 * predictor specs and merge the results into one report.
 *
 * The corpus runner (sim/corpus.hh) does the work: every trace file
 * is one pool job, ingested zero-copy when possible (shared mmap
 * per .bpt; CBP-style text and .gz corpora through the adapters)
 * and gang-replayed through every spec in a single decode pass.
 *
 * Output determinism: everything on stdout and in --json is
 * byte-identical for any --threads value — timings go to stderr —
 * so CI diffs the 1-thread and 4-thread runs directly.
 *
 * Usage:
 *   bp_corpus <trace-dir> [--spec <predictor-spec>]...
 *             [--threads <n>] [--block-size <records>]
 *             [--warmup <branches>] [--topk <sites>]
 *             [--json <path>] [--trace-out <path>]
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/corpus.hh"
#include "support/logging.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "support/tracing.hh"

using namespace bpred;

namespace
{

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: bp_corpus <trace-dir> [options]\n"
        << "  --spec <spec>          predictor spec (repeatable;\n"
        << "                         default gshare:12:10,\n"
        << "                         gskewed:3:11:8, egskew:11:8)\n"
        << "  --threads <n>          worker threads (0 = auto)\n"
        << "  --block-size <records> gang replay block size\n"
        << "  --warmup <branches>    train-only prefix per member\n"
        << "  --topk <sites>         hardest-site list length\n"
        << "  --json <path>          write the merged JSON report\n"
        << "  --trace-out <path>     write a Perfetto trace\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string directory;
    CorpusOptions options;
    std::string json_path;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "bp_corpus: " << what
                          << " needs a value\n";
                usage();
            }
            return argv[++i];
        };
        if (arg == "--spec") {
            options.specs.push_back(next("--spec"));
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                parseU64(next("--threads"), "--threads"));
        } else if (arg == "--block-size") {
            options.blockRecords = static_cast<std::size_t>(
                parseU64(next("--block-size"), "--block-size"));
        } else if (arg == "--warmup") {
            options.sim.warmupBranches =
                parseU64(next("--warmup"), "--warmup");
        } else if (arg == "--topk") {
            options.topSites = static_cast<std::size_t>(
                parseU64(next("--topk"), "--topk"));
        } else if (arg == "--json") {
            json_path = next("--json");
        } else if (arg == "--trace-out") {
            trace_path = next("--trace-out");
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bp_corpus: unknown option '" << arg
                      << "'\n";
            usage();
        } else if (directory.empty()) {
            directory = arg;
        } else {
            std::cerr << "bp_corpus: more than one directory given\n";
            usage();
        }
    }
    if (directory.empty()) {
        usage();
    }
    if (options.specs.empty()) {
        options.specs = {"gshare:12:10", "gskewed:3:11:8",
                         "egskew:11:8"};
    }

    if (!trace_path.empty()) {
        trace::setEnabled(true);
        trace::setThreadName("main");
    }

    try {
        const auto started = std::chrono::steady_clock::now();
        const CorpusReport report = runCorpus(directory, options);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();

        std::cout << "== corpus: " << directory << " ==\n";
        std::cout << "specs:";
        for (const std::string &spec : report.specs) {
            std::cout << ' ' << spec;
        }
        std::cout << "\n\n";

        std::vector<std::string> headers = {"file", "ingest",
                                            "records", "cond"};
        for (const std::string &spec : report.specs) {
            headers.push_back(spec + " miss%");
        }
        headers.push_back("hard sites");
        headers.push_back("hard share");
        TextTable table(headers);
        u64 failures = 0;
        for (const CorpusFileResult &file : report.files) {
            table.row();
            if (!file.error.empty()) {
                ++failures;
                table.cell(file.file).cell("ERROR");
                table.cell(u64(0)).cell(u64(0));
                for (std::size_t s = 0; s < report.specs.size();
                     ++s) {
                    table.cell("-");
                }
                table.cell("-").cell("-");
                continue;
            }
            table.cell(file.file).cell(file.ingest);
            table.cell(file.records);
            table.cell(file.stats.dynamicConditional);
            for (const SimResult &result : file.results) {
                table.percentCell(result.mispredictPercent());
            }
            table.cell(file.classes.hardSites);
            table.percentCell(100.0 * file.classes.hardShare());
        }
        table.print(std::cout);
        std::cout << "\n";

        // Per-spec aggregate over the successful files.
        TextTable summary({"spec", "files", "conditionals",
                           "mispredicts", "miss%"});
        const JsonValue merged = report.toJson();
        for (std::size_t s = 0; s < report.specs.size(); ++s) {
            u64 conditionals = 0;
            u64 mispredicts = 0;
            u64 ok_files = 0;
            for (const CorpusFileResult &file : report.files) {
                if (!file.error.empty() ||
                    s >= file.results.size()) {
                    continue;
                }
                ++ok_files;
                conditionals += file.results[s].conditionals;
                mispredicts += file.results[s].mispredicts;
            }
            summary.row().cell(report.specs[s]).cell(ok_files);
            summary.cell(conditionals).cell(mispredicts);
            summary.percentCell(conditionals == 0
                                    ? 0.0
                                    : 100.0 *
                                        static_cast<double>(
                                            mispredicts) /
                                        static_cast<double>(
                                            conditionals));
        }
        summary.print(std::cout);

        if (failures > 0) {
            std::cout << "\n" << failures
                      << " file(s) failed; see JSON for details\n";
        }

        if (!json_path.empty()) {
            std::ofstream os(json_path);
            if (!os) {
                fatal("cannot open '" + json_path +
                      "' for writing");
            }
            merged.write(os, 2);
            os << "\n";
        }

        // Timing is stderr-only so stdout stays byte-diffable
        // across thread counts.
        inform("bp_corpus: " + std::to_string(report.files.size()) +
               " file(s) in " + std::to_string(elapsed) + " s");

        if (!trace_path.empty()) {
            trace::setEnabled(false);
            if (!trace::writeChromeTrace(trace_path)) {
                warn("--trace-out: write to '" + trace_path +
                     "' failed");
            }
        }
        return failures == 0 ? 0 : 1;
    } catch (const FatalError &error) {
        std::cerr << "bp_corpus: " << error.what() << "\n";
        return 1;
    }
}
