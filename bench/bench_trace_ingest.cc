/**
 * @file
 * Trace-ingest throughput: istream vs mmap vs mmap+fast-decode.
 *
 * The gang/SIMD replay engine consumes records faster than the
 * original istream-based BPT1 decoder produced them, which made
 * ingestion the pipeline's bottleneck. This bench measures the
 * three ingest paths over one BPT1 file (default ~8M records,
 * honouring BPRED_TRACE_SCALE and `--records`):
 *
 *   istream    BinaryTraceSource — bulk slab reads, per-byte decode
 *   mmap       MmapTraceSource, per-record reference decoder
 *   mmap+fast  MmapTraceSource, sub-batch bulk decoder (the default)
 *
 * and enforces two gates with a non-zero exit status:
 *  - byte identity: every path yields the same records (checksum)
 *    and byte-identical sim results — tallies and snapshot bytes —
 *    for every listSchemes() entry;
 *  - throughput: mmap+fast >= 2x istream, enforced when the trace
 *    is large enough to time meaningfully (>= 4M records);
 *    informational below that.
 *
 * `--json` reports records/s per path, the fast/istream ratio and
 * peak RSS (memmeter), so CI trends ingest performance run-to-run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "sim/factory.hh"
#include "sim/session.hh"
#include "support/aligned.hh"
#include "support/logging.hh"
#include "support/memmeter.hh"
#include "support/parse.hh"
#include "trace/adapters.hh"
#include "trace/mmap_source.hh"
#include "trace/trace_io.hh"
#include "workloads/presets.hh"

using namespace bpred;

namespace
{

/** Records below which the 2x throughput gate is informational. */
constexpr std::size_t gateMinRecords = 4'000'000;

/** Interleaved repetitions; the median absorbs scheduler noise. */
constexpr int timingRepetitions = 5;

struct DrainOutcome
{
    u64 records = 0;
    u64 checksum = 0;
};

/**
 * Pull @p source dry, folding every record into an order-sensitive
 * checksum (the index weight keeps the fold associative, so it does
 * not serialize on a multiply chain). Used untimed, once per path,
 * to prove the paths produce identical records.
 */
DrainOutcome
drainChecksum(TraceSource &source, AlignedVector<BranchRecord> &block)
{
    DrainOutcome outcome;
    while (const std::size_t n =
               source.pull(block.data(), block.size())) {
        u64 fold = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const BranchRecord &record = block[i];
            fold ^= (record.pc ^ (record.taken ? 1 : 0) ^
                     (record.conditional ? 2 : 0)) *
                (outcome.records + i + 0x9e3779b97f4a7c15ull);
        }
        outcome.checksum ^= fold;
        outcome.records += n;
    }
    return outcome;
}

/**
 * Timed drain: the bare pull loop, nothing else, so the clock sees
 * ingest alone. The decode writes every record into @p block and
 * advances internal source state, so none of it can be elided; the
 * untimed checksum drain above covers correctness.
 */
double
drainTimed(TraceSource &source, AlignedVector<BranchRecord> &block)
{
    const auto started = std::chrono::steady_clock::now();
    while (source.pull(block.data(), block.size()) != 0) {
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started)
        .count();
}

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

/** One sim identity probe: tallies plus snapshot bytes. */
struct SimFingerprint
{
    u64 conditionals = 0;
    u64 mispredicts = 0;
    std::string snapshot;

    bool
    operator==(const SimFingerprint &other) const
    {
        return conditionals == other.conditionals &&
            mispredicts == other.mispredicts &&
            snapshot == other.snapshot;
    }
};

SimFingerprint
fingerprint(const std::string &spec, TraceSource &source)
{
    const std::unique_ptr<Predictor> predictor = makePredictor(spec);
    const SimResult result = simulateSource(*predictor, source);
    SimFingerprint print;
    print.conditionals = result.conditionals;
    print.mispredicts = result.mispredicts;
    if (predictor->supportsSnapshot()) {
        std::ostringstream os;
        predictor->saveState(os);
        print.snapshot = os.str();
    }
    return print;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> extra =
        bench::initWithExtraArgs(argc, argv);
    std::size_t requested_records = 0;
    for (std::size_t i = 0; i < extra.size(); ++i) {
        if (extra[i] == "--records" && i + 1 < extra.size()) {
            requested_records = static_cast<std::size_t>(
                parseU64(extra[++i], "--records"));
        } else {
            std::cerr << "bench_trace_ingest: unknown argument '"
                      << extra[i] << "'\n";
            return 2;
        }
    }

    bench::banner("trace ingest",
                  "zero-copy mmap + sub-batch decode vs the "
                  "istream slab decoder (>= 2x, byte-identical)");

    // Default ~8M records, scaled like every other bench so the CI
    // smoke run stays light (BPRED_TRACE_SCALE).
    const std::size_t records = requested_records != 0
        ? requested_records
        : static_cast<std::size_t>(
              8'000'000.0 * effectiveTraceScale(1.0));
    const double gen_scale =
        static_cast<double>(records) / 2'000'000.0;
    Trace trace = makeIbsTrace("real_gcc", gen_scale);
    trace.setName("ingest");

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("bench_ingest_" + std::to_string(::getpid()) + ".bpt"))
            .string();
    saveBinaryTrace(path, trace);
    const u64 file_bytes = std::filesystem::file_size(path);
    std::cout << "trace: " << trace.size() << " records, "
              << file_bytes << " bytes on disk, block "
              << bench::blockRecords() << " records\n\n";

    if (!mmapSupported()) {
        inform("mmap unavailable on this platform; nothing to "
               "compare");
        std::filesystem::remove(path);
        return bench::finish();
    }

    AlignedVector<BranchRecord> block(bench::blockRecords());
    struct Path
    {
        const char *label;
        std::function<std::unique_ptr<TraceSource>()> open;
    };
    const std::vector<Path> paths = {
        {"istream",
         [&]() { return std::make_unique<BinaryTraceSource>(path); }},
        {"mmap",
         [&]() {
             auto source = std::make_unique<MmapTraceSource>(path);
             source->setFastDecode(false);
             return source;
         }},
        {"mmap+fast",
         [&]() { return std::make_unique<MmapTraceSource>(path); }},
    };

    // One untimed checksum drain per path proves the paths decode
    // identical records (and warms the page cache for everyone).
    std::vector<u64> checksums(paths.size(), 0);
    u64 drained_records = 0;
    for (std::size_t p = 0; p < paths.size(); ++p) {
        std::unique_ptr<TraceSource> source = paths[p].open();
        const DrainOutcome outcome = drainChecksum(*source, block);
        checksums[p] = outcome.checksum;
        if (p == 0) {
            drained_records = outcome.records;
        } else if (outcome.records != drained_records) {
            std::cerr << "FAIL: " << paths[p].label
                      << " drained a different record count\n";
            return 1;
        }
    }

    // Interleave timed repetitions so drift (thermal, page cache)
    // hits every path equally; keep the per-path median.
    std::vector<std::vector<double>> seconds(paths.size());
    for (int rep = 0; rep < timingRepetitions; ++rep) {
        for (std::size_t p = 0; p < paths.size(); ++p) {
            std::unique_ptr<TraceSource> source = paths[p].open();
            seconds[p].push_back(drainTimed(*source, block));
        }
    }

    bool identical = checksums[0] == checksums[1] &&
        checksums[0] == checksums[2] &&
        drained_records == trace.size();

    std::vector<double> rate(paths.size(), 0.0);
    for (std::size_t p = 0; p < paths.size(); ++p) {
        rate[p] = static_cast<double>(drained_records) /
            median(seconds[p]);
    }
    const double ratio_fast = rate[2] / rate[0];

    TextTable table({"path", "Mrec/s", "MB/s", "vs istream"});
    for (std::size_t p = 0; p < paths.size(); ++p) {
        table.row().cell(paths[p].label);
        table.cell(rate[p] / 1e6, 2);
        table.cell(rate[p] / static_cast<double>(drained_records) *
                       static_cast<double>(file_bytes) / 1e6,
                   2);
        table.cell(rate[p] / rate[0], 2);
    }
    bench::emitTable("ingest", table);

    // Optional fourth column of the story: whole-file gz ingest
    // (materializing adapter path), informational only.
    if (gzSupported()) {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream raw;
        raw << is.rdbuf();
        const std::string gz_path = path + ".gz";
        writeGzFile(gz_path, raw.str());
        std::vector<double> gz_seconds;
        for (int rep = 0; rep < timingRepetitions; ++rep) {
            const auto started = std::chrono::steady_clock::now();
            const Trace inflated = loadRealTrace(gz_path);
            gz_seconds.push_back(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     started)
                                     .count());
            if (inflated.size() != trace.size()) {
                identical = false;
            }
        }
        const double gz_rate = static_cast<double>(trace.size()) /
            median(gz_seconds);
        TextTable gz_table({"path", "Mrec/s"});
        gz_table.row().cell("bpt.gz (materialize)").cell(
            gz_rate / 1e6, 2);
        bench::emitTable("ingest-gz", gz_table);
        bench::recordReportField("ingest_records_per_s_gz", gz_rate);
        std::filesystem::remove(gz_path);
    }

    // Sim identity sweep: every factory scheme, all three ingest
    // paths, comparing tallies and snapshot bytes.
    std::size_t schemes_checked = 0;
    for (const SchemeInfo &scheme : listSchemes()) {
        std::vector<SimFingerprint> prints;
        for (const Path &ingest : paths) {
            std::unique_ptr<TraceSource> source = ingest.open();
            prints.push_back(fingerprint(scheme.example, *source));
        }
        if (!(prints[0] == prints[1] && prints[0] == prints[2])) {
            std::cerr << "FAIL: scheme '" << scheme.example
                      << "' diverges across ingest paths\n";
            identical = false;
        }
        ++schemes_checked;
    }
    std::cout << "\nidentity: " << schemes_checked
              << " schemes x 3 ingest paths "
              << (identical ? "byte-identical" : "DIVERGED") << "\n";

    const MemUsage mem = processMemUsage();
    bench::recordReportField("ingest_records", u64(drained_records));
    bench::recordReportField("ingest_file_bytes", file_bytes);
    bench::recordReportField("ingest_records_per_s_istream", rate[0]);
    bench::recordReportField("ingest_records_per_s_mmap", rate[1]);
    bench::recordReportField("ingest_records_per_s_mmap_fast",
                             rate[2]);
    bench::recordReportField("ingest_fast_over_istream", ratio_fast);
    bench::recordReportField("ingest_rss_peak_bytes",
                             mem.rssPeakBytes);
    bench::recordReportField("ingest_identical", identical);

    bench::expectation(
        "mmap+fast decodes >= 2x the istream path; all three paths "
        "replay byte-identically for every scheme.");

    std::filesystem::remove(path);

    const bool gate_throughput = drained_records >= gateMinRecords;
    if (!identical) {
        std::cerr << "FAIL: ingest paths are not byte-identical\n";
        bench::finish();
        return 1;
    }
    if (gate_throughput && ratio_fast < 2.0) {
        std::cerr << "FAIL: mmap+fast is only " << ratio_fast
                  << "x istream (gate: 2.0x)\n";
        bench::finish();
        return 1;
    }
    if (!gate_throughput) {
        inform("trace below " + std::to_string(gateMinRecords) +
               " records; 2x gate informational only");
    }
    return bench::finish();
}
