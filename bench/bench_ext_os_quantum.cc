/**
 * @file
 * Extension: OS scheduling-quantum sensitivity.
 *
 * The paper's motivation (§1) leans on OS/multiprogramming studies
 * (Gloy et al., Uhlig et al.): system activity inflates the
 * (address, history) working set and the aliasing pressure. Here
 * the kernel interleave quantum of the verilog-like workload is
 * swept: shorter quanta mean more context switches per million
 * branches, more history pollution and more conflicts — and a
 * larger gskewed advantage.
 */

#include "bench_common.hh"

#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/timeline.hh"
#include "workloads/presets.hh"
#include "workloads/process_mix.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: OS quantum sensitivity",
           "verilog-like workload, kernel share 25%, sweeping the "
           "scheduling quantum: gshare-4K vs gskewed-3x2K (75% "
           "storage), h=8.");

    TextTable table({"user quantum", "total alias 4K",
                     "conflict 4K", "gshare-4K", "gskewed-3x2K",
                     "gskew gain"});
    for (const u64 quantum : {100'000ULL, 40'000ULL, 10'000ULL,
                              2'500ULL}) {
        WorkloadParams params =
            ibsPreset("verilog", effectiveTraceScale(defaultScale));
        params.kernelShare = 0.25;
        params.userQuantumMean = quantum;
        const Trace trace = generateWorkload(params);

        const ThreeCsResult aliasing = measureThreeCs(
            trace, IndexFunction{IndexKind::GShare, 12, 8});

        GSharePredictor gshare(12, 8);
        SkewedPredictor gskewed(3, 11, 8, UpdatePolicy::Partial);
        const double share_pct =
            simulate(gshare, trace).mispredictPercent();
        const double skew_pct =
            simulate(gskewed, trace).mispredictPercent();

        table.row()
            .cell(formatCount(quantum))
            .percentCell(aliasing.totalAliasing * 100.0)
            .percentCell(aliasing.conflict() * 100.0)
            .percentCell(share_pct)
            .percentCell(skew_pct)
            .percentCell(share_pct - skew_pct);
    }
    emitTable("summary", table);

    expectation(
        "Shorter quanta raise total aliasing and misprediction for "
        "both designs; the skewed organization holds its relative "
        "advantage as interference pressure grows — the workload "
        "regime the paper was designed for.");
    return finish();
}
