/**
 * @file
 * Extension: last-use-distance profiles — the single trace
 * statistic that drives the whole §5.2 model, measured directly.
 *
 * For each benchmark: the distance distribution of (address,
 * history) pairs at h=4 and h=12, the fraction of references below
 * the gskewed win threshold (~N/10 for an N-entry one-bank
 * competitor), and the model's expected per-bank aliasing
 * probability at representative sizes. This table explains every
 * crossover in Figures 5-7 from first principles.
 */

#include "bench_common.hh"

#include "model/distance_profile.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: last-use distance profiles",
           "Distance distribution of (address, history) pairs and "
           "the model's per-bank aliasing probabilities.");

    for (const unsigned history : {4u, 12u}) {
        std::cout << "\n--- " << history << "-bit history ---\n";
        TextTable table({"benchmark", "median D", "90% D",
                         "D<=1.6K (16K/10)", "compulsory",
                         "E[p] 4K bank", "E[p] 16K bank"});
        for (const Trace &trace : suite()) {
            const DistanceProfile profile =
                profileDistances(trace, history);
            table.row()
                .cell(trace.name())
                .cell(profile.distances.percentile(0.5))
                .cell(profile.distances.percentile(0.9))
                .percentCell(profile.fractionWithin(1638) * 100.0)
                .percentCell(
                    100.0 * static_cast<double>(profile.compulsory) /
                    static_cast<double>(profile.dynamicBranches))
                .cell(profile.expectedAliasingProbability(4096), 4)
                .cell(profile.expectedAliasingProbability(16384), 4);
        }
        emitTable("h" + std::to_string(history), table);
    }

    expectation(
        "Median distances sit well under the bank sizes that win "
        "in Figures 5-6; the h12 distributions are several times "
        "heavier than h4 (the capacity pressure behind Figure 7's "
        "long-history behaviour). E[p] falls with table size "
        "exactly as formula (1) dictates.");
    return finish();
}
