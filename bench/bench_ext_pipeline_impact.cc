/**
 * @file
 * Extension: end-performance translation. The paper motivates
 * skewing with deep, wide pipelines (§1); this bench runs the
 * first-order pipeline model over the headline predictors to show
 * what the accuracy differences mean in CPI and speedup on a
 * shallow and a deep machine.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/pipeline_model.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: pipeline impact",
           "gshare-16K vs e-gskew-3x4K (h=11) through the "
           "first-order CPI model at 8-cycle and 20-cycle refill "
           "penalties.");

    PipelineParams shallow;
    shallow.baseCpi = 0.5;
    shallow.branchDensity = 0.15;
    shallow.mispredictPenalty = 8.0;
    PipelineParams deep = shallow;
    deep.mispredictPenalty = 20.0;

    TextTable table({"benchmark", "gshare misp", "e-gskew misp",
                     "speedup @8cy", "speedup @20cy",
                     "stall% @20cy (gshare)"});
    for (const Trace &trace : suite()) {
        GSharePredictor gshare(14, 11);
        SkewedPredictor egskew(makeEnhancedConfig(12, 11));
        const SimResult share_result = simulate(gshare, trace);
        const SimResult skew_result = simulate(egskew, trace);

        // speedupOver(reference) = reference.cpi / this.cpi:
        // e-gskew's speedup over gshare on each machine.
        const double speedup_8 =
            estimatePipeline(skew_result, shallow)
                .speedupOver(estimatePipeline(share_result, shallow));
        const double speedup_deep =
            estimatePipeline(skew_result, deep)
                .speedupOver(estimatePipeline(share_result, deep));

        table.row()
            .cell(trace.name())
            .percentCell(share_result.mispredictPercent())
            .percentCell(skew_result.mispredictPercent())
            .cell(speedup_8, 4)
            .cell(speedup_deep, 4)
            .percentCell(
                estimatePipeline(share_result, deep).stallFraction *
                100.0);
    }
    emitTable("summary", table);

    expectation(
        "The same accuracy gap is worth ~2.5x more speedup on the "
        "20-cycle machine than the 8-cycle one — the deep-pipeline "
        "motivation of §1 in numbers. e-gskew achieves this with "
        "25% less predictor storage.");
    return finish();
}
