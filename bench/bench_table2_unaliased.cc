/**
 * @file
 * Table 2: the unaliased (infinite-table) predictor.
 *
 * For history lengths of 4 and 12 bits: substream ratio,
 * compulsory-aliasing percentage, and misprediction ratios for
 * 1-bit and 2-bit counters with first encounters excluded.
 */

#include "bench_common.hh"

#include "predictors/unaliased.hh"

namespace
{

struct PaperRow
{
    const char *name;
    double substream;
    double compulsory;
    double one_bit;
    double two_bit;
};

constexpr PaperRow paperH4[] = {
    {"groff", 1.82, 0.09, 5.47, 3.77},
    {"gs", 1.91, 0.15, 7.03, 5.28},
    {"mpeg_play", 1.83, 0.11, 9.08, 7.24},
    {"nroff", 1.79, 0.04, 4.99, 3.72},
    {"real_gcc", 2.36, 0.28, 9.38, 7.16},
    {"verilog", 1.96, 0.13, 6.48, 4.57},
};

constexpr PaperRow paperH12[] = {
    {"groff", 7.14, 0.35, 3.63, 2.56},
    {"gs", 7.95, 0.61, 3.71, 2.77},
    {"mpeg_play", 6.27, 0.37, 5.85, 4.52},
    {"nroff", 5.71, 0.12, 3.04, 2.20},
    {"real_gcc", 12.90, 1.55, 4.90, 3.93},
    {"verilog", 9.24, 0.64, 3.74, 2.66},
};

void
runHistoryLength(unsigned history_bits, const PaperRow *paper)
{
    using namespace bpred;
    using namespace bpred::bench;

    std::cout << "\n--- " << history_bits << "-bit history ---\n";
    TextTable table({"benchmark", "substream", "compulsory",
                     "mispred 1-bit", "mispred 2-bit",
                     "paper substr", "paper comp", "paper 1-bit",
                     "paper 2-bit"});

    std::size_t row = 0;
    for (const Trace &trace : suite()) {
        UnaliasedPredictor one_bit(history_bits, 1);
        UnaliasedPredictor two_bit(history_bits, 2);
        simulate(one_bit, trace);
        simulate(two_bit, trace);

        table.row()
            .cell(trace.name())
            .cell(two_bit.substreamRatio(), 2)
            .percentCell(two_bit.compulsoryAliasingRatio() * 100.0)
            .percentCell(one_bit.mispredictionRatio() * 100.0)
            .percentCell(two_bit.mispredictionRatio() * 100.0)
            .cell(paper[row].substream, 2)
            .percentCell(paper[row].compulsory)
            .percentCell(paper[row].one_bit)
            .percentCell(paper[row].two_bit);
        ++row;
    }
    emitTable("summary", table);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred::bench;

    init(argc, argv);

    banner("Table 2",
           "Unaliased predictor: substream ratio, compulsory "
           "aliasing, and 1-/2-bit misprediction (first encounters "
           "not charged).");

    runHistoryLength(4, paperH4);
    runHistoryLength(12, paperH12);

    expectation(
        "2-bit beats 1-bit everywhere; longer history lowers "
        "misprediction but multiplies substreams (h12 substream "
        "ratio ~3-6x the h4 ratio, real_gcc highest) and raises "
        "compulsory aliasing; compulsory stays ~small relative to "
        "dynamic count.");
    return finish();
}
