/**
 * @file
 * Figure 1: miss percentages in tables tagged with (address,
 * history) pairs — 4-bit history.
 *
 * For each benchmark and each table size, three curves: a
 * direct-mapped table indexed gshare-style, one indexed
 * gselect-style, and a fully-associative LRU table of equal
 * capacity. FA = compulsory + capacity; DM - FA = conflict.
 *
 * Every (trace x size) cell is an independent one-pass measurement,
 * so the sweep runs on the parallelMap worker pool; results come
 * back in submission order, keeping output identical to the serial
 * run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <functional>

#include "aliasing/three_c.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 1",
           "Aliasing (tagged-table miss %) vs table size, 4-bit "
           "history: gshare-DM vs gselect-DM vs fully-associative "
           "LRU.");

    constexpr unsigned historyBits = 4;
    const std::vector<unsigned> sizeBits = {10, 11, 12, 13,
                                            14, 15, 16};

    std::vector<std::function<std::vector<ThreeCsResult>()>> cells;
    for (const Trace &trace : suite()) {
        for (const unsigned bits : sizeBits) {
            cells.push_back([&trace, bits] {
                return measureThreeCsMulti(
                    trace,
                    {{IndexKind::GShare, bits, historyBits},
                     {IndexKind::GSelect, bits, historyBits}});
            });
        }
    }
    const auto measured = parallelMap(cells, sweepThreads());

    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"entries", "gshare DM", "gselect DM",
                         "FA-LRU", "conflict(gshare)",
                         "capacity", "compulsory"});
        for (const unsigned bits : sizeBits) {
            const ThreeCsResult &gshare = measured[cell][0];
            const ThreeCsResult &gselect = measured[cell][1];
            ++cell;
            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(gshare.totalAliasing * 100.0)
                .percentCell(gselect.totalAliasing * 100.0)
                .percentCell(gshare.faMissRatio * 100.0)
                .percentCell(gshare.conflict() * 100.0)
                .percentCell(gshare.capacity() * 100.0)
                .percentCell(gshare.compulsory * 100.0);
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "gselect aliases more than gshare at every size; the FA "
        "curve collapses to the compulsory floor by ~4K entries, "
        "leaving conflicts as the overwhelming cause of aliasing "
        "in larger tables.");
    return finish();
}
