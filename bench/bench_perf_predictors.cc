/**
 * @file
 * Microbenchmark: predictor lookup+update throughput
 * (google-benchmark). Not a paper artifact — a library quality
 * gauge: the simulation loops above run millions of events per
 * configuration, so per-event cost matters.
 *
 * The default BM_* fixtures drive the fused predictAndUpdate()
 * fast path (what simulate() uses); the *Split variants keep the
 * old predict()+update() sequence so the fusion win stays
 * measurable. BM_SweepSerial vs BM_SweepParallel time the same
 * six-cell mini-sweep through a plain loop and through the
 * SweepRunner pool.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/parallel.hh"
#include "support/probe.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

namespace
{

using namespace bpred;

Trace
makePerfTrace()
{
    Trace trace("perf");
    Rng rng(1);
    for (int i = 0; i < 1 << 16; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(4096);
        if (rng.chance(0.25)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.7));
        }
    }
    trace.shrinkToFit();
    return trace;
}

const Trace &
perfTrace()
{
    static const Trace trace = makePerfTrace();
    return trace;
}

/** Fused fast path: one virtual call per conditional branch. */
void
runPredictor(benchmark::State &state, const std::string &spec,
             ProbeSink *probe = nullptr)
{
    const Trace &trace = perfTrace();
    auto predictor = makePredictor(spec);
    predictor->attachProbe(probe);
    for (auto _ : state) {
        for (const BranchRecord &record : trace) {
            if (!record.conditional) {
                predictor->notifyUnconditional(record.pc);
                continue;
            }
            benchmark::DoNotOptimize(
                predictor->predictAndUpdate(record.pc, record.taken)
                    .prediction);
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.size()));
}

/** Legacy split path, kept to measure the fusion win. */
void
runPredictorSplit(benchmark::State &state, const std::string &spec)
{
    const Trace &trace = perfTrace();
    auto predictor = makePredictor(spec);
    for (auto _ : state) {
        for (const BranchRecord &record : trace) {
            if (!record.conditional) {
                predictor->notifyUnconditional(record.pc);
                continue;
            }
            benchmark::DoNotOptimize(
                predictor->predict(record.pc));
            predictor->update(record.pc, record.taken);
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.size()));
}

void BM_Bimodal(benchmark::State &state)
{
    runPredictor(state, "bimodal:14");
}
void BM_GShare(benchmark::State &state)
{
    runPredictor(state, "gshare:14:10");
}
void BM_GSelect(benchmark::State &state)
{
    runPredictor(state, "gselect:14:10");
}
void BM_Pag(benchmark::State &state)
{
    runPredictor(state, "pag:12:10");
}
void BM_Hybrid(benchmark::State &state)
{
    runPredictor(state, "hybrid:13:10");
}
void BM_Gskewed3(benchmark::State &state)
{
    runPredictor(state, "gskewed:3:12:10");
}
void BM_Gskewed5(benchmark::State &state)
{
    runPredictor(state, "gskewed:5:12:10");
}
void BM_EGskew(benchmark::State &state)
{
    runPredictor(state, "egskew:12:10");
}
void BM_FaLru(benchmark::State &state)
{
    runPredictor(state, "falru:4096:10");
}

// Split-path references for the fusion speedup (acceptance gauge:
// the fused BM_GShare/BM_EGskew should beat these by >= 10%).
void BM_GShareSplit(benchmark::State &state)
{
    runPredictorSplit(state, "gshare:14:10");
}
void BM_EGskewSplit(benchmark::State &state)
{
    runPredictorSplit(state, "egskew:12:10");
}

// Telemetry cost gauges: the same predictors with a CountingProbe
// attached. Compare against the no-sink runs above — the no-sink
// numbers must not regress (the probe hook is one null check), and
// the probed numbers bound what full instrumentation costs.
void BM_GShareProbed(benchmark::State &state)
{
    CountingProbe probe;
    runPredictor(state, "gshare:14:10", &probe);
}
void BM_EGskewProbed(benchmark::State &state)
{
    CountingProbe probe;
    runPredictor(state, "egskew:12:10", &probe);
}

// Sweep engine gauges: the same six-cell mini-sweep executed as a
// plain serial loop and through the SweepRunner thread pool. On a
// multi-core host the parallel fixture should approach
// serial/threads; on one core it degenerates to the serial time
// plus negligible pool overhead.
const std::vector<std::string> &
sweepSpecs()
{
    static const std::vector<std::string> specs = {
        "gshare:12:8",     "gshare:14:8",  "gskewed:3:10:8",
        "gskewed:3:12:8",  "egskew:10:8",  "egskew:12:8",
    };
    return specs;
}

void BM_SweepSerial(benchmark::State &state)
{
    const Trace &trace = perfTrace();
    u64 mispredicts = 0;
    for (auto _ : state) {
        for (const std::string &spec : sweepSpecs()) {
            auto predictor = makePredictor(spec);
            mispredicts += simulate(*predictor, trace).mispredicts;
        }
    }
    benchmark::DoNotOptimize(mispredicts);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(sweepSpecs().size()) *
        static_cast<int64_t>(trace.size()));
    state.counters["threads"] = 1;
}

void BM_SweepParallel(benchmark::State &state)
{
    const Trace &trace = perfTrace();
    u64 mispredicts = 0;
    SweepRunner runner;
    for (auto _ : state) {
        for (const std::string &spec : sweepSpecs()) {
            runner.enqueue(spec, trace);
        }
        for (const SimResult &result : runner.run()) {
            mispredicts += result.mispredicts;
        }
    }
    benchmark::DoNotOptimize(mispredicts);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(sweepSpecs().size()) *
        static_cast<int64_t>(trace.size()));
    state.counters["threads"] =
        static_cast<double>(runner.threads());
}

BENCHMARK(BM_Bimodal);
BENCHMARK(BM_GShare);
BENCHMARK(BM_GSelect);
BENCHMARK(BM_Pag);
BENCHMARK(BM_Hybrid);
BENCHMARK(BM_Gskewed3);
BENCHMARK(BM_Gskewed5);
BENCHMARK(BM_EGskew);
BENCHMARK(BM_FaLru);
BENCHMARK(BM_GShareSplit);
BENCHMARK(BM_EGskewSplit);
BENCHMARK(BM_GShareProbed);
BENCHMARK(BM_EGskewProbed);
BENCHMARK(BM_SweepSerial);
BENCHMARK(BM_SweepParallel);

} // namespace

BENCHMARK_MAIN();
