/**
 * @file
 * Replay-kernel throughput gauge. Not a paper artifact — a library
 * quality gauge: the simulation loops run millions of events per
 * configuration, so per-event cost matters.
 *
 * Three sections:
 *  - "throughput": per scheme, the five replay kernels side by
 *    side — split predict()+update(), fused predictAndUpdate(),
 *    the per-block replayBlock() batch kernel, the phase-split
 *    SIMD path (replayBlock with an AVX2 ReplayScratch), and a
 *    4-member GangSession — in millions of records per second,
 *    each the median of several interleaved runs.
 *  - "simd_identity": for every factory scheme, the phase-split
 *    path is replayed against the fused scalar reference and must
 *    match tallies and saveState() bytes exactly; any divergence
 *    exits nonzero.
 *  - "gang_sweep": a Figure-5-shaped size sweep (many cells, one
 *    shared trace) run through SweepRunner twice at the same
 *    thread count: once as the pre-gang per-cell engine
 *    (BPRED_GANG_WIDTH=1 + options.scalarReplay, i.e. the scalar
 *    fused loop) and once ganged through the block kernels. The
 *    two passes must agree bit-for-bit; the gang pass is expected
 *    to be >= 1.5x faster.
 *
 * With `--json <path>` both tables land in BENCH_perf.json, so CI
 * keeps a scalar/fused/block/gang throughput trajectory per scheme.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>

#include "predictors/replay_scratch.hh"
#include "sim/factory.hh"
#include "sim/gang.hh"
#include "sim/parallel.hh"
#include "support/perfcount.hh"
#include "support/rng.hh"
#include "support/simd.hh"
#include "trace/trace.hh"

namespace
{

using namespace bpred;
using Clock = std::chrono::steady_clock;

/**
 * Timing repetitions per kernel: each measurement below is the
 * median of this many runs, so a single scheduler hiccup cannot
 * poison a column. The repetitions of the different kernels are
 * interleaved round-robin (one rep of each, then the next rep of
 * each) so slow machine-wide drift — frequency steps, a noisy
 * neighbour — hits every kernel's samples about equally and the
 * between-kernel ratios stay meaningful; back-to-back batches per
 * kernel would let minutes-apart drift masquerade as a kernel
 * difference. Recorded as "repetitions" in the JSON report.
 */
constexpr int timingRepetitions = 5;

/** Median of collected throughput samples. */
double
medianOfSamples(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

Trace
makePerfTrace()
{
    Trace trace("perf");
    Rng rng(1);
    for (int i = 0; i < 1 << 18; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(4096);
        if (rng.chance(0.25)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.7));
        }
    }
    trace.shrinkToFit();
    return trace;
}

double
secondsFor(const std::function<void()> &body)
{
    const Clock::time_point start = Clock::now();
    body();
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Millions of records per second for @p records in @p seconds. */
double
mrps(double records, double seconds)
{
    return seconds > 0 ? records / seconds / 1e6 : 0.0;
}

/** Split predict()+update() — the pre-fusion reference. */
double
runSplit(const std::string &spec, const Trace &trace, int reps)
{
    auto predictor = makePredictor(spec);
    u64 sink = 0;
    const double seconds = secondsFor([&] {
        for (int rep = 0; rep < reps; ++rep) {
            for (const BranchRecord &record : trace) {
                if (!record.conditional) {
                    predictor->notifyUnconditional(record.pc);
                    continue;
                }
                sink += predictor->predict(record.pc) ? 1 : 0;
                predictor->update(record.pc, record.taken);
            }
        }
    });
    // Keep the predictions observable so the loop cannot be elided.
    volatile u64 guard = sink;
    (void)guard;
    return mrps(double(trace.size()) * reps, seconds);
}

/** Fused predictAndUpdate() — one virtual call per branch. */
double
runFused(const std::string &spec, const Trace &trace, int reps)
{
    auto predictor = makePredictor(spec);
    u64 sink = 0;
    const double seconds = secondsFor([&] {
        for (int rep = 0; rep < reps; ++rep) {
            for (const BranchRecord &record : trace) {
                if (!record.conditional) {
                    predictor->notifyUnconditional(record.pc);
                    continue;
                }
                sink += predictor
                            ->predictAndUpdate(record.pc,
                                               record.taken)
                            .prediction
                    ? 1
                    : 0;
            }
        }
    });
    // Keep the predictions observable so the loop cannot be elided.
    volatile u64 guard = sink;
    (void)guard;
    return mrps(double(trace.size()) * reps, seconds);
}

/** runBlock() outcome: throughput plus hardware counters. */
struct BlockPerf
{
    double mrps = 0.0;
    PerfSample sample;
};

/**
 * replayBlock() batch kernel — one virtual call per block. The
 * hardware counter group brackets exactly the timed region, so the
 * sample answers "what does the host CPU do under replayBlock":
 * simulator IPC and cache/branch misses per simulated kilo-record.
 */
BlockPerf
runBlock(const std::string &spec, const Trace &trace, int reps,
         std::size_t block_records)
{
    auto predictor = makePredictor(spec);
    ReplayCounters counters;
    PerfCounterGroup group;
    BlockPerf perf;
    group.start();
    const double seconds = secondsFor([&] {
        for (int rep = 0; rep < reps; ++rep) {
            const BranchRecord *records = trace.records().data();
            for (std::size_t at = 0; at < trace.size();
                 at += block_records) {
                const std::size_t n =
                    std::min(block_records, trace.size() - at);
                predictor->replayBlock(records + at, n, counters);
            }
        }
    });
    perf.sample = group.stop();
    perf.mrps = mrps(double(trace.size()) * reps, seconds);
    return perf;
}

/** Median BlockPerf: the perf sample travels with the median run. */
BlockPerf
medianBlockPerf(std::vector<BlockPerf> samples)
{
    std::sort(samples.begin(), samples.end(),
              [](const BlockPerf &a, const BlockPerf &b) {
                  return a.mrps < b.mrps;
              });
    return samples[samples.size() / 2];
}

/**
 * The phase-split vector path: replayBlock() with a ReplayScratch
 * requesting AVX2 dispatch — what SimSession passes down when
 * SimOptions::simd resolves to a vector mode. On a scalar-only
 * build (or a non-AVX2 host) this degrades to the fused kernel and
 * the simd/block column sits at ~1.
 */
double
runSimd(const std::string &spec, const Trace &trace, int reps,
        std::size_t block_records)
{
    auto predictor = makePredictor(spec);
    ReplayCounters counters;
    ReplayScratch scratch;
    // Auto honours BPRED_SIMD, so CI can record this bench under
    // both dispatch modes from one binary.
    scratch.mode = SimdMode::Auto;
    const double seconds = secondsFor([&] {
        for (int rep = 0; rep < reps; ++rep) {
            const BranchRecord *records = trace.records().data();
            for (std::size_t at = 0; at < trace.size();
                 at += block_records) {
                const std::size_t n =
                    std::min(block_records, trace.size() - at);
                predictor->replayBlock(records + at, n, counters,
                                       &scratch);
            }
        }
    });
    return mrps(double(trace.size()) * reps, seconds);
}

/**
 * Byte-identity gate: replay @p trace blockwise through @p spec
 * twice — the fused scalar reference (null scratch) and the
 * phase-split AVX2 path — and demand identical tallies and, where
 * snapshots are supported, identical saveState() bytes. Returns
 * false (and reports) on any divergence.
 */
bool
simdMatchesScalar(const std::string &spec, const Trace &trace,
                  std::size_t block_records)
{
    auto scalar = makePredictor(spec);
    auto simd = makePredictor(spec);
    ReplayCounters scalarTally;
    ReplayCounters simdTally;
    ReplayScratch scratch;
    scratch.mode = SimdMode::Auto;
    const BranchRecord *records = trace.records().data();
    for (std::size_t at = 0; at < trace.size(); at += block_records) {
        const std::size_t n =
            std::min(block_records, trace.size() - at);
        scalar->replayBlock(records + at, n, scalarTally);
        simd->replayBlock(records + at, n, simdTally, &scratch);
    }
    if (scalarTally.conditionals != simdTally.conditionals ||
        scalarTally.mispredicts != simdTally.mispredicts) {
        std::cout << "[FAIL] " << spec
                  << ": simd tally diverged from scalar ("
                  << simdTally.mispredicts << "/"
                  << simdTally.conditionals << " vs "
                  << scalarTally.mispredicts << "/"
                  << scalarTally.conditionals << ")\n";
        return false;
    }
    if (scalar->supportsSnapshot() && simd->supportsSnapshot()) {
        std::ostringstream scalarState;
        std::ostringstream simdState;
        scalar->saveState(scalarState);
        simd->saveState(simdState);
        if (scalarState.str() != simdState.str()) {
            std::cout << "[FAIL] " << spec
                      << ": simd predictor state bytes diverged "
                         "from scalar\n";
            return false;
        }
    }
    return true;
}

/** A 4-member gang: records x members per trace pass. */
double
runGang(const std::string &spec, const Trace &trace, int reps,
        std::size_t block_records)
{
    constexpr std::size_t width = 4;
    std::vector<std::unique_ptr<Predictor>> predictors;
    std::vector<Predictor *> raw;
    for (std::size_t i = 0; i < width; ++i) {
        predictors.push_back(makePredictor(spec));
        raw.push_back(predictors.back().get());
    }
    const double seconds = secondsFor([&] {
        for (int rep = 0; rep < reps; ++rep) {
            simulateGang(raw, trace, SimOptions(), block_records);
        }
    });
    return mrps(double(trace.size()) * reps * width, seconds);
}

/** Enqueue the Figure-5-shaped cell grid over @p trace. */
void
enqueueFig5Cells(SweepRunner &runner, const Trace &trace,
                 const SimOptions &options)
{
    const std::vector<unsigned> sizeBits = {10, 11, 12, 13, 14};
    for (const unsigned bits : sizeBits) {
        runner.enqueue("gshare:" + std::to_string(bits) + ":4",
                       trace, options);
        runner.enqueue("gskewed:3:" + std::to_string(bits - 2) +
                           ":4",
                       trace, options);
        runner.enqueue("gskewed:3:" + std::to_string(bits) + ":4",
                       trace, options);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred::bench;

    init(argc, argv);
    banner("replay kernel throughput",
           "Split vs fused vs per-block vs gang replay, and a "
           "fig5-shaped sweep per-cell vs ganged.");

    const Trace trace = makePerfTrace();
    const std::size_t block = blockRecords();
    const int reps =
        std::max<int>(1, int((u64(1) << 21) / trace.size()));
    std::cout << "[perf] synthetic trace: " << trace.size()
              << " records, " << reps << " reps/kernel, block "
              << block << " records\n\n";

    const std::vector<std::string> specs = {
        "bimodal:14",      "gshare:14:10", "gselect:14:10",
        "hybrid:13:10",    "gskewed:3:12:10", "egskew:12:10",
    };

    // Every number is a median of timingRepetitions runs; the
    // resolved dispatch and repetition count land in the JSON so
    // perf artifacts are self-describing.
    const SimdMode resolved = resolveSimdMode(SimdMode::Auto);
    recordReportField("repetitions", u64(timingRepetitions));
    recordReportField("simd_mode",
                      std::string(simdModeName(resolved)));
    std::cout << "[perf] simd dispatch resolves to "
              << simdModeName(resolved) << ", median of "
              << timingRepetitions << " runs per kernel\n\n";

    // IPC / MPKrec come from a perf_event group bracketing the
    // block kernel; unavailable counters (containers, non-Linux)
    // print "-" and are omitted from the JSON stats.
    TextTable table({"scheme", "split Mrec/s", "fused Mrec/s",
                     "block Mrec/s", "simd Mrec/s", "gang4 Mrec/s",
                     "block/fused", "simd/block", "IPC",
                     "c-miss/Krec", "b-miss/Krec"});
    const double blockRecordsTotal = double(trace.size()) * reps;
    for (const std::string &spec : specs) {
        // Interleaved repetitions: one rep of every kernel per pass
        // (see timingRepetitions) so the medians compare like with
        // like under machine-wide throughput drift.
        std::vector<double> splitSamples;
        std::vector<double> fusedSamples;
        std::vector<BlockPerf> blockSamples;
        std::vector<double> simdSamples;
        std::vector<double> gangSamples;
        for (int i = 0; i < timingRepetitions; ++i) {
            splitSamples.push_back(runSplit(spec, trace, reps));
            fusedSamples.push_back(runFused(spec, trace, reps));
            blockSamples.push_back(
                runBlock(spec, trace, reps, block));
            simdSamples.push_back(
                runSimd(spec, trace, reps, block));
            gangSamples.push_back(
                runGang(spec, trace, reps, block));
        }
        const double split = medianOfSamples(splitSamples);
        const double fused = medianOfSamples(fusedSamples);
        const BlockPerf blocked = medianBlockPerf(blockSamples);
        const double simd = medianOfSamples(simdSamples);
        const double ganged = medianOfSamples(gangSamples);
        table.row()
            .cell(spec)
            .cell(split, 1)
            .cell(fused, 1)
            .cell(blocked.mrps, 1)
            .cell(simd, 1)
            .cell(ganged, 1)
            .cell(fused > 0 ? blocked.mrps / fused : 0.0, 2)
            .cell(blocked.mrps > 0 ? simd / blocked.mrps : 0.0, 2);
        const PerfSample &sample = blocked.sample;
        if (sample.valid) {
            table.cell(sample.ipc(), 2)
                .cell(PerfSample::perKilo(sample.cacheMisses,
                                          blockRecordsTotal),
                      2)
                .cell(PerfSample::perKilo(sample.branchMisses,
                                          blockRecordsTotal),
                      2);
        } else {
            table.cell(std::string("-"))
                .cell(std::string("-"))
                .cell(std::string("-"));
        }
        if (jsonEnabled() && sample.valid) {
            StatRegistry hw;
            hw.counter("perf.cycles") = sample.cycles;
            hw.counter("perf.instructions") = sample.instructions;
            hw.counter("perf.cache_misses") = sample.cacheMisses;
            hw.counter("perf.branch_misses") = sample.branchMisses;
            hw.running("perf.ipc").sample(sample.ipc());
            hw.running("perf.branch_mpkr")
                .sample(PerfSample::perKilo(sample.branchMisses,
                                            blockRecordsTotal));
            emitStats("throughput", spec, hw);
        }
    }
    emitTable("throughput", table);

    // Correctness gate for the phase-split path: every scheme the
    // factory can build must produce tallies and predictor state
    // byte-identical to the fused scalar reference. A divergence
    // fails the whole bench (nonzero exit), so CI catches a broken
    // vector kernel even when throughput looks healthy.
    bool simdIdentical = true;
    TextTable identity({"scheme", "spec", "identical"});
    for (const SchemeInfo &scheme : listSchemes()) {
        const bool ok = simdMatchesScalar(scheme.example, trace,
                                          block);
        identity.row()
            .cell(scheme.name)
            .cell(scheme.example)
            .cell(std::string(ok ? "yes" : "NO"));
        simdIdentical = simdIdentical && ok;
    }
    emitTable("simd_identity", identity);

    // The acceptance gauge: the same fig5-shaped sweep (15 cells,
    // one shared trace) through SweepRunner at the same thread
    // count. The baseline pass is the pre-gang per-cell engine —
    // one cell at a time (BPRED_GANG_WIDTH=1; the prior value is
    // restored after) through the scalar fused loop
    // (options.scalarReplay). The second pass is the gang engine
    // with its devirtualized block kernels.
    const char *prior = std::getenv("BPRED_GANG_WIDTH");
    const std::string saved = prior ? prior : "";

    SimOptions scalarOptions;
    scalarOptions.scalarReplay = true;
    SweepRunner percellRunner(sweepThreads(), block);
    enqueueFig5Cells(percellRunner, trace, scalarOptions);
    setenv("BPRED_GANG_WIDTH", "1", 1);
    std::vector<SimResult> percell;
    const double percellSeconds =
        secondsFor([&] { percell = percellRunner.run(); });

    if (prior) {
        setenv("BPRED_GANG_WIDTH", saved.c_str(), 1);
    } else {
        unsetenv("BPRED_GANG_WIDTH");
    }
    SweepRunner gangRunner(sweepThreads(), block);
    enqueueFig5Cells(gangRunner, trace, SimOptions());
    std::vector<SimResult> ganged;
    const double gangSeconds =
        secondsFor([&] { ganged = gangRunner.run(); });

    bool identical = percell.size() == ganged.size();
    for (std::size_t i = 0; identical && i < percell.size(); ++i) {
        identical = percell[i].mispredicts ==
                ganged[i].mispredicts &&
            percell[i].conditionals == ganged[i].conditionals &&
            percell[i].predictorName == ganged[i].predictorName;
    }

    const double cells = double(percell.size());
    const double sweepRecords = cells * double(trace.size());
    TextTable sweep({"mode", "cells", "seconds", "Mrec/s",
                     "speedup", "identical"});
    sweep.row()
        .cell(std::string("per-cell-scalar"))
        .cell(u64(cells))
        .cell(percellSeconds, 3)
        .cell(mrps(sweepRecords, percellSeconds), 1)
        .cell(1.0, 2)
        .cell(std::string("-"));
    sweep.row()
        .cell(std::string("gang"))
        .cell(u64(cells))
        .cell(gangSeconds, 3)
        .cell(mrps(sweepRecords, gangSeconds), 1)
        .cell(gangSeconds > 0 ? percellSeconds / gangSeconds : 0.0,
              2)
        .cell(std::string(identical ? "yes" : "NO"));
    emitTable("gang_sweep", sweep);

    if (!identical) {
        std::cout << "\n[FAIL] gang results diverged from the "
                     "per-cell pass\n";
        return 1;
    }
    if (!simdIdentical) {
        std::cout << "\n[FAIL] simd replay diverged from the scalar "
                     "block path\n";
        return 1;
    }

    expectation(
        "block/fused >= 1 per scheme (devirtualized kernels never "
        "lose); simd/block >= 1.5 on gshare and egskew at the "
        "default block size when AVX2 dispatch is live, "
        "byte-identically to the scalar path for every scheme; and "
        "the ganged fig5-shaped sweep runs >= 1.5x the per-cell "
        "scalar fused-path engine at the same thread count, "
        "bit-identically.");
    return finish();
}
