/**
 * @file
 * Microbenchmark: predictor lookup+update throughput
 * (google-benchmark). Not a paper artifact — a library quality
 * gauge: the simulation loops above run millions of events per
 * configuration, so per-event cost matters.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "sim/factory.hh"
#include "support/probe.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

namespace
{

using namespace bpred;

Trace
makePerfTrace()
{
    Trace trace("perf");
    Rng rng(1);
    for (int i = 0; i < 1 << 16; ++i) {
        const Addr pc = 0x1000 + 4 * rng.uniformInt(4096);
        if (rng.chance(0.25)) {
            trace.appendUnconditional(pc);
        } else {
            trace.appendConditional(pc, rng.chance(0.7));
        }
    }
    return trace;
}

void
runPredictor(benchmark::State &state, const std::string &spec,
             ProbeSink *probe = nullptr)
{
    static const Trace trace = makePerfTrace();
    auto predictor = makePredictor(spec);
    predictor->attachProbe(probe);
    for (auto _ : state) {
        for (const BranchRecord &record : trace) {
            if (!record.conditional) {
                predictor->notifyUnconditional(record.pc);
                continue;
            }
            benchmark::DoNotOptimize(
                predictor->predict(record.pc));
            predictor->update(record.pc, record.taken);
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(trace.size()));
}

void BM_Bimodal(benchmark::State &state)
{
    runPredictor(state, "bimodal:14");
}
void BM_GShare(benchmark::State &state)
{
    runPredictor(state, "gshare:14:10");
}
void BM_GSelect(benchmark::State &state)
{
    runPredictor(state, "gselect:14:10");
}
void BM_Pag(benchmark::State &state)
{
    runPredictor(state, "pag:12:10");
}
void BM_Hybrid(benchmark::State &state)
{
    runPredictor(state, "hybrid:13:10");
}
void BM_Gskewed3(benchmark::State &state)
{
    runPredictor(state, "gskewed:3:12:10");
}
void BM_Gskewed5(benchmark::State &state)
{
    runPredictor(state, "gskewed:5:12:10");
}
void BM_EGskew(benchmark::State &state)
{
    runPredictor(state, "egskew:12:10");
}
void BM_FaLru(benchmark::State &state)
{
    runPredictor(state, "falru:4096:10");
}

// Telemetry cost gauges: the same predictors with a CountingProbe
// attached. Compare against the no-sink runs above — the no-sink
// numbers must not regress (the probe hook is one null check), and
// the probed numbers bound what full instrumentation costs.
void BM_GShareProbed(benchmark::State &state)
{
    CountingProbe probe;
    runPredictor(state, "gshare:14:10", &probe);
}
void BM_EGskewProbed(benchmark::State &state)
{
    CountingProbe probe;
    runPredictor(state, "egskew:12:10", &probe);
}

BENCHMARK(BM_Bimodal);
BENCHMARK(BM_GShare);
BENCHMARK(BM_GSelect);
BENCHMARK(BM_Pag);
BENCHMARK(BM_Hybrid);
BENCHMARK(BM_Gskewed3);
BENCHMARK(BM_Gskewed5);
BENCHMARK(BM_EGskew);
BENCHMARK(BM_FaLru);
BENCHMARK(BM_GShareProbed);
BENCHMARK(BM_EGskewProbed);

} // namespace

BENCHMARK_MAIN();
