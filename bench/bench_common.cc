#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "sim/factory.hh"
#include "sim/gang.hh"
#include "sim/parallel.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/memmeter.hh"
#include "support/tracing.hh"
#include "workloads/presets.hh"

namespace bpred::bench
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Accumulated `--json` report state for this bench binary. */
struct Report
{
    std::string benchName = "bench";
    std::string jsonPath;
    std::string tracePath;
    std::string statsPath;
    unsigned requestedThreads = 0;
    std::size_t blockRecords = defaultReplayBlockRecords;
    Clock::time_point start = Clock::now();
    JsonValue sections = JsonValue::object();

    /** Extra top-level document fields (recordReportField). */
    std::vector<std::pair<std::string, JsonValue>> extra;
};

Report &
report()
{
    static Report instance;
    return instance;
}

/** The report node for @p section, created on first use. */
JsonValue &
sectionNode(const std::string &section)
{
    JsonValue &node = report().sections[section];
    if (node.isNull()) {
        node = JsonValue::object();
    }
    return node;
}

std::string
basenameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Toolchain identity baked into every `--json` report header. */
std::string
compilerVersion()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

/**
 * Build provenance for the report header. The git SHA, build type
 * and flag summary are stamped into bench_common at configure time
 * (bench/CMakeLists.txt); the compiler string comes from the
 * compiler itself, so artifacts stay attributable even when the
 * tree was dirty or CMake cached a stale SHA.
 */
JsonValue
buildMetadata()
{
    JsonValue node = JsonValue::object();
#if defined(BPRED_GIT_SHA)
    node["git_sha"] = std::string(BPRED_GIT_SHA);
#else
    node["git_sha"] = std::string("unknown");
#endif
    node["compiler"] = compilerVersion();
#if defined(BPRED_BUILD_TYPE)
    node["build_type"] = std::string(BPRED_BUILD_TYPE);
#else
    node["build_type"] = std::string("unknown");
#endif
#if defined(BPRED_CMAKE_FLAGS)
    node["cmake_flags"] = std::string(BPRED_CMAKE_FLAGS);
#else
    node["cmake_flags"] = std::string("");
#endif
    return node;
}

/** Process memory footprint for report headers and --stats-out. */
JsonValue
memoryMetadata()
{
    JsonValue node = JsonValue::object();
    const MemUsage usage = processMemUsage();
    node["rss_bytes"] = u64(usage.valid ? usage.rssBytes : 0);
    node["rss_peak_bytes"] =
        u64(usage.valid ? usage.rssPeakBytes : 0);
    node["tracked_alloc_bytes"] = u64(AllocGauge::current());
    node["tracked_alloc_peak_bytes"] = u64(AllocGauge::peak());
    return node;
}

/**
 * Dump the process-wide engine metrics (sweep pool accounting,
 * session feed phases — support/stat_registry.hh engineStats())
 * plus the memory footprint to the `--stats-out` path. Returns
 * false on I/O failure.
 */
bool
writeStatsOut(const std::string &path)
{
    JsonValue document = JsonValue::object();
    document["bench"] = report().benchName;
    {
        std::lock_guard<std::mutex> hold(engineStatsMutex());
        document["engine"] = engineStats().toJson();
    }
    document["memory"] = memoryMetadata();
    document["trace_events"] = u64(trace::eventCount());
    document["trace_dropped"] = u64(trace::droppedCount());
    std::ofstream out(path);
    if (!out) {
        warn("--stats-out: cannot open '" + path + "' for writing");
        return false;
    }
    document.write(out, 2);
    out << "\n";
    if (!out.good()) {
        warn("--stats-out: write to '" + path + "' failed");
        return false;
    }
    inform("wrote engine stats to " + path);
    return true;
}

} // namespace

namespace
{

[[noreturn]] void
usage(const std::string &offending)
{
    // CLI surface: report usage and exit instead of throwing
    // through main() into std::terminate.
    std::fprintf(stderr,
                 "usage: %s [--json <path>] [--threads <n>] "
                 "[--block-size <records>] [--trace-out <path>] "
                 "[--stats-out <path>] (got '%s')\n",
                 report().benchName.c_str(), offending.c_str());
    std::exit(2);
}

unsigned
parseThreads(const std::string &value)
{
    try {
        const unsigned long parsed = std::stoul(value);
        if (parsed >= 1 && parsed <= 4096) {
            return static_cast<unsigned>(parsed);
        }
    } catch (const std::exception &) {
        // fall through to usage
    }
    usage("--threads " + value);
}

std::size_t
parseBlockSize(const std::string &value)
{
    try {
        const unsigned long parsed = std::stoul(value);
        if (parsed >= 1 && parsed <= (1ul << 24)) {
            return static_cast<std::size_t>(parsed);
        }
    } catch (const std::exception &) {
        // fall through to usage
    }
    usage("--block-size " + value);
}

} // namespace

namespace
{

void
initImpl(int argc, char **argv, std::vector<std::string> *extra)
{
    if (argc > 0) {
        report().benchName = basenameOf(argv[0]);
    }
    report().start = Clock::now();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            report().jsonPath = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            report().jsonPath = arg.substr(7);
        } else if (arg == "--threads" && i + 1 < argc) {
            report().requestedThreads = parseThreads(argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            report().requestedThreads =
                parseThreads(arg.substr(10));
        } else if (arg == "--block-size" && i + 1 < argc) {
            report().blockRecords = parseBlockSize(argv[++i]);
        } else if (arg.rfind("--block-size=", 0) == 0) {
            report().blockRecords =
                parseBlockSize(arg.substr(13));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            report().tracePath = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            report().tracePath = arg.substr(12);
        } else if (arg == "--stats-out" && i + 1 < argc) {
            report().statsPath = argv[++i];
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            report().statsPath = arg.substr(12);
        } else if (extra != nullptr) {
            extra->push_back(arg);
        } else {
            usage(arg);
        }
    }
    if (!report().tracePath.empty()) {
        trace::setEnabled(true);
        trace::setThreadName("main");
    }
}

} // namespace

void
init(int argc, char **argv)
{
    initImpl(argc, argv, nullptr);
}

std::vector<std::string>
initWithExtraArgs(int argc, char **argv)
{
    std::vector<std::string> extra;
    initImpl(argc, argv, &extra);
    return extra;
}

bool
jsonEnabled()
{
    return !report().jsonPath.empty();
}

unsigned
sweepThreads()
{
    return report().requestedThreads;
}

std::size_t
blockRecords()
{
    return report().blockRecords;
}

const std::vector<Trace> &
suite()
{
    static const std::vector<Trace> traces = [] {
        const double scale = effectiveTraceScale(defaultScale);
        std::cout << "[suite] generating 6 IBS-like traces at scale "
                  << scale << " (set BPRED_TRACE_SCALE to change, "
                  << "BPRED_TRACE_CACHE to cache)\n";
        TRACE_SCOPE("tracegen", "ibs-suite");
        return ibsSuite(defaultScale);
    }();
    return traces;
}

void
banner(const std::string &artifact, const std::string &claim)
{
    std::cout << "====================================================\n"
              << "Reproducing " << artifact << "\n"
              << claim << "\n"
              << "====================================================\n";
}

void
expectation(const std::string &text)
{
    std::cout << "\n[paper shape] " << text << "\n";
}

void
recordReportField(const std::string &key, JsonValue value)
{
    if (!jsonEnabled()) {
        return;
    }
    for (auto &[existing, stored] : report().extra) {
        if (existing == key) {
            stored = std::move(value);
            return;
        }
    }
    report().extra.emplace_back(key, std::move(value));
}

void
emitTable(const std::string &section, const TextTable &table)
{
    table.print(std::cout);
    if (jsonEnabled()) {
        sectionNode(section)["tables"].push(table.toJson());
    }
}

void
emitResult(const std::string &section, const std::string &name,
           const SimResult &result)
{
    if (jsonEnabled()) {
        sectionNode(section)["results"][name] = result.toJson();
    }
}

void
emitStats(const std::string &section, const std::string &name,
          const StatRegistry &stats)
{
    if (jsonEnabled()) {
        sectionNode(section)["stats"][name] = stats.toJson();
    }
}

int
finish()
{
    int status = 0;
    // Trace first: the export quiesce point is here, after every
    // SweepRunner::run() has joined its pool.
    if (!report().tracePath.empty()) {
        trace::setEnabled(false);
        if (trace::writeChromeTrace(report().tracePath)) {
            inform("wrote trace (" +
                   std::to_string(trace::eventCount()) +
                   " events) to " + report().tracePath);
        } else {
            warn("--trace-out: write to '" + report().tracePath +
                 "' failed");
            status = 1;
        }
    }
    if (!report().statsPath.empty() &&
        !writeStatsOut(report().statsPath)) {
        status = 1;
    }
    if (!jsonEnabled()) {
        return status;
    }
    JsonValue document = JsonValue::object();
    document["bench"] = report().benchName;
    document["build"] = buildMetadata();
    document["memory"] = memoryMetadata();
    document["trace_scale"] = effectiveTraceScale(defaultScale);
    document["threads"] =
        u64(resolveThreadCount(report().requestedThreads));
    document["block_size"] = u64(report().blockRecords);
    for (const auto &[key, value] : report().extra) {
        document[key] = value;
    }
    document["elapsed_seconds"] =
        std::chrono::duration<double>(Clock::now() - report().start)
            .count();
    document["sections"] = report().sections;
    std::ofstream out(report().jsonPath);
    if (!out) {
        warn("--json: cannot open '" + report().jsonPath +
             "' for writing");
        return 1;
    }
    document.write(out, 2);
    out << "\n";
    if (!out.good()) {
        warn("--json: write to '" + report().jsonPath + "' failed");
        return 1;
    }
    inform("wrote JSON report to " + report().jsonPath);
    return status;
}

double
mispredictPercent(const std::string &spec, const Trace &trace)
{
    auto predictor = makePredictor(spec);
    return simulate(*predictor, trace).mispredictPercent();
}

} // namespace bpred::bench
