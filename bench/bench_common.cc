#include "bench_common.hh"

#include "sim/factory.hh"
#include "workloads/presets.hh"

namespace bpred::bench
{

const std::vector<Trace> &
suite()
{
    static const std::vector<Trace> traces = [] {
        const double scale = effectiveTraceScale(defaultScale);
        std::cout << "[suite] generating 6 IBS-like traces at scale "
                  << scale << " (set BPRED_TRACE_SCALE to change, "
                  << "BPRED_TRACE_CACHE to cache)\n";
        return ibsSuite(defaultScale);
    }();
    return traces;
}

void
banner(const std::string &artifact, const std::string &claim)
{
    std::cout << "====================================================\n"
              << "Reproducing " << artifact << "\n"
              << claim << "\n"
              << "====================================================\n";
}

void
expectation(const std::string &text)
{
    std::cout << "\n[paper shape] " << text << "\n";
}

double
mispredictPercent(const std::string &spec, const Trace &trace)
{
    auto predictor = makePredictor(spec);
    return simulate(*predictor, trace).mispredictPercent();
}

} // namespace bpred::bench
