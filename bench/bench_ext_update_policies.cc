/**
 * @file
 * Extension (§7 future work, "update policies"): the PartialLazy
 * policy — skip counter writes that would not change the stored
 * value. Prediction-identical to partial update; the win is
 * predictor-array write traffic, a first-order cost for a
 * multi-ported front-end structure.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: update policies",
           "gskewed-3x4K-h8: total vs partial vs partial-lazy — "
           "misprediction and bank-write traffic per 1000 branches.");

    TextTable table({"benchmark", "total misp", "partial misp",
                     "lazy misp", "total wr/kbr", "partial wr/kbr",
                     "lazy wr/kbr"});
    for (const Trace &trace : suite()) {
        SkewedPredictor::Config config;
        config.numBanks = 3;
        config.bankIndexBits = 12;
        config.historyBits = 8;

        config.updatePolicy = UpdatePolicy::Total;
        SkewedPredictor total(config);
        config.updatePolicy = UpdatePolicy::Partial;
        SkewedPredictor partial(config);
        config.updatePolicy = UpdatePolicy::PartialLazy;
        SkewedPredictor lazy(config);

        const SimResult rt = simulate(total, trace);
        const SimResult rp = simulate(partial, trace);
        const SimResult rl = simulate(lazy, trace);

        auto per_kbr = [&](const SkewedPredictor &p,
                           const SimResult &r) {
            return static_cast<double>(p.bankWrites()) * 1000.0 /
                static_cast<double>(r.conditionals);
        };

        table.row()
            .cell(trace.name())
            .percentCell(rt.mispredictPercent())
            .percentCell(rp.mispredictPercent())
            .percentCell(rl.mispredictPercent())
            .cell(per_kbr(total, rt), 0)
            .cell(per_kbr(partial, rp), 0)
            .cell(per_kbr(lazy, rl), 0);
    }
    emitTable("summary", table);

    expectation(
        "partial == partial-lazy misprediction (bit-identical "
        "behaviour); write traffic falls from 3000/kbr (total) to "
        "~2800 (partial) to far less (lazy skips "
        "already-saturated strengthening writes).");
    return finish();
}
