/**
 * @file
 * Ablation A3: is it the *skewing* that works, or just the banks?
 *
 * Compares the real gskewed (independent hash per bank) against a
 * 3-bank majority-vote structure where all banks share one gshare
 * index — pure triplication. If inter-bank hash independence is
 * the active ingredient, triplication should be clearly worse
 * (it triples storage without dispersing conflicts).
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: skewing functions",
           "gskewed-3x4K vs identical-index 3x4K (triplication) vs "
           "single 4K gshare, h=8, partial update.");

    TextTable table({"benchmark", "gskewed 3x4K",
                     "identical 3x4K", "gshare 4K"});
    for (const Trace &trace : suite()) {
        SkewedPredictor::Config config;
        config.numBanks = 3;
        config.bankIndexBits = 12;
        config.historyBits = 8;
        config.updatePolicy = UpdatePolicy::Partial;

        SkewedPredictor skewed(config);
        config.indexing = BankIndexing::IdenticalGshare;
        SkewedPredictor identical(config);
        GSharePredictor gshare(12, 8);

        table.row()
            .cell(trace.name())
            .percentCell(simulate(skewed, trace).mispredictPercent())
            .percentCell(
                simulate(identical, trace).mispredictPercent())
            .percentCell(
                simulate(gshare, trace).mispredictPercent());
    }
    emitTable("summary", table);

    expectation(
        "Identical-index triplication behaves like the single 4K "
        "gshare (replication disperses nothing) while true "
        "skewing is clearly better: the gain comes from the "
        "independent hash functions, not from having three "
        "banks.");
    return finish();
}
