/**
 * @file
 * Ablation A3: is it the *skewing* that works, or just the banks?
 *
 * Compares the real gskewed (independent hash per bank) against a
 * 3-bank majority-vote structure where all banks share one gshare
 * index — pure triplication. If inter-bank hash independence is
 * the active ingredient, triplication should be clearly worse
 * (it triples storage without dispersing conflicts).
 *
 * All (trace x configuration) cells run on the SweepRunner thread
 * pool; the ordered results keep output identical to the serial
 * run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: skewing functions",
           "gskewed-3x4K vs identical-index 3x4K (triplication) vs "
           "single 4K gshare, h=8, partial update.");

    SkewedPredictor::Config skewedConfig;
    skewedConfig.numBanks = 3;
    skewedConfig.bankIndexBits = 12;
    skewedConfig.historyBits = 8;
    skewedConfig.updatePolicy = UpdatePolicy::Partial;

    SkewedPredictor::Config identicalConfig = skewedConfig;
    identicalConfig.indexing = BankIndexing::IdenticalGshare;

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const Trace &trace : suite()) {
        runner.enqueue(
            [skewedConfig] {
                return std::make_unique<SkewedPredictor>(
                    skewedConfig);
            },
            trace);
        runner.enqueue(
            [identicalConfig] {
                return std::make_unique<SkewedPredictor>(
                    identicalConfig);
            },
            trace);
        runner.enqueue(
            [] { return std::make_unique<GSharePredictor>(12, 8); },
            trace);
    }
    const std::vector<SimResult> results = runner.run();

    TextTable table({"benchmark", "gskewed 3x4K",
                     "identical 3x4K", "gshare 4K"});
    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        table.row()
            .cell(trace.name())
            .percentCell(results[cell].mispredictPercent())
            .percentCell(results[cell + 1].mispredictPercent())
            .percentCell(results[cell + 2].mispredictPercent());
        cell += 3;
    }
    emitTable("summary", table);

    expectation(
        "Identical-index triplication behaves like the single 4K "
        "gshare (replication disperses nothing) while true "
        "skewing is clearly better: the gain comes from the "
        "independent hash functions, not from having three "
        "banks.");
    return finish();
}
