/**
 * @file
 * Extension (§7 future work, "per-address history schemes"):
 * skewing applied to a PAg pattern table (pskew).
 *
 * Two regimes are reported, because they disagree — and that
 * disagreement is the finding:
 *
 *  1. On the IBS-like suite, PAg's *shared* pattern table is mostly
 *     constructively aliased (same-history branches usually agree),
 *     so it generalizes across branches; mixing the address in
 *     (pskew) trades that generalization for conflict isolation and
 *     loses at equal storage.
 *  2. On a conflict-stress workload (many branch pairs realizing
 *     clashing history->outcome functions), the shared table
 *     thrashes and pskew wins decisively.
 *
 * The skewing technique transfers to per-address schemes exactly
 * when pattern-table interference is destructive — the same
 * condition §5.2's model identifies for global schemes.
 */

#include "bench_common.hh"

#include "core/skewed_local.hh"
#include "predictors/local_two_level.hh"
#include "support/rng.hh"

namespace
{

using namespace bpred;

/** Conflict-stress trace: clashing local-pattern site classes. */
Trace
conflictStressTrace(u64 branches, u64 seed)
{
    Trace trace("pattern-conflict-stress");
    Rng rng(seed);
    std::vector<u32> phase(512, 0);
    for (u64 i = 0; i < branches; ++i) {
        const u32 site = static_cast<u32>(rng.uniformInt(512));
        const Addr pc = 0x1000 + 4 * site;
        const u32 p = phase[site]++;
        const bool outcome =
            site % 2 == 0 ? p % 2 == 0 : (p % 4) < 2;
        trace.appendConditional(pc, outcome);
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: skewed per-address predictor",
           "PAg vs pskew: IBS-like suite (constructive sharing) and "
           "a conflict-stress workload (destructive sharing).");

    TextTable table({"workload", "pag-1Kx10 (2Kb PHT)",
                     "pskew-1Kx10-3x512 (3Kb banks)"});
    for (const Trace &trace : suite()) {
        LocalTwoLevelPredictor pag(10, 10);
        SkewedLocalPredictor pskew(10, 10, 3, 9);
        table.row()
            .cell(trace.name())
            .percentCell(simulate(pag, trace).mispredictPercent())
            .percentCell(simulate(pskew, trace).mispredictPercent());
    }
    {
        const Trace stress = conflictStressTrace(400'000, 9);
        LocalTwoLevelPredictor pag(10, 2);
        SkewedLocalPredictor pskew(10, 2, 3, 9);
        table.row()
            .cell(stress.name())
            .percentCell(simulate(pag, stress).mispredictPercent())
            .percentCell(simulate(pskew, stress).mispredictPercent());
    }
    emitTable("summary", table);

    expectation(
        "PAg wins on the six IBS-like rows (constructive sharing "
        "dominates); pskew wins by a wide margin on the "
        "conflict-stress row. Skewing helps exactly where "
        "interference is destructive.");
    return finish();
}
