/**
 * @file
 * Extension: the skewed-associative *tagged* yardstick.
 *
 * Figures 1-2 bracket direct-mapped aliasing with a
 * fully-associative LRU table. The skewing functions came from
 * skewed-associative caches, so the natural intermediate question
 * is: how much of the DM-to-FA gap does skewed associativity alone
 * close, before the tag-less majority-vote trick? This bench adds
 * a 3-way skewed tagged table between the Figure 1 curves.
 */

#include "bench_common.hh"

#include "aliasing/skewed_tagged_table.hh"
#include "aliasing/three_c.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: skewed-associative tagged yardstick",
           "Tagged-table miss % at h=4: direct-mapped gshare vs "
           "3-way skewed vs fully-associative LRU, equal total "
           "entries.");

    constexpr unsigned historyBits = 4;

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"total entries", "gshare DM",
                         "3-way skewed", "FA-LRU",
                         "gap closed"});
        for (unsigned bits = 11; bits <= 15; bits += 2) {
            // Equal totals: DM 2^bits vs skewed 3 x 2^(bits)/4...
            // power-of-two constraint: compare DM 2^bits against
            // skewed 3 x 2^(bits-2) (0.75x) and FA 2^bits.
            const std::vector<IndexFunction> functions = {
                {IndexKind::GShare, bits, historyBits},
            };
            const auto dm_results =
                measureThreeCsMulti(trace, functions);

            SkewedTaggedTable skewed(3, bits - 2);
            GlobalHistory history;
            for (const BranchRecord &record : trace) {
                if (!record.conditional) {
                    history.shiftIn(true);
                    continue;
                }
                skewed.access(packInfoVector(record.pc,
                                             history.raw(),
                                             historyBits));
                history.shiftIn(record.taken);
            }

            const double dm = dm_results[0].totalAliasing;
            const double fa = dm_results[0].faMissRatio;
            const double sk = skewed.missStat().ratio();
            const double closed = dm - fa < 1e-12
                ? 1.0
                : (dm - sk) / (dm - fa);
            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(dm * 100.0)
                .percentCell(sk * 100.0)
                .percentCell(fa * 100.0)
                .percentCell(closed * 100.0);
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "With 25% fewer entries than the DM table, the 3-way "
        "skewed tagged table closes most of the DM-to-FA gap — "
        "the cache-side property the tag-less skewed predictor "
        "inherits through its majority vote.");
    return finish();
}
