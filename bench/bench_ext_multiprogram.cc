/**
 * @file
 * Extension: multiprogrammed trace splicing.
 *
 * The OS studies the paper cites (Gloy et al.) observe that
 * *multiprogramming* — several processes time-sharing one
 * predictor — inflates aliasing beyond what any single process
 * shows. Here two benchmark traces are interleaved in round-robin
 * quanta (trace-level splicing, no regeneration) and the mix's
 * aliasing and misprediction are compared against the same
 * branches run back-to-back.
 */

#include "bench_common.hh"

#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "trace/transform.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: multiprogrammed splicing",
           "groff + gs interleaved in shrinking quanta vs run "
           "back-to-back: aliasing at 4K entries (h=8) and "
           "misprediction of gshare-4K vs gskewed-3x2K.");

    const Trace &a = suite()[0]; // groff
    const Trace &b = suite()[1]; // gs

    TextTable table({"mix", "total alias 4K", "conflict 4K",
                     "gshare-4K", "gskewed-3x2K"});

    auto measure = [&](const std::string &label,
                       const Trace &trace) {
        const ThreeCsResult aliasing = measureThreeCs(
            trace, IndexFunction{IndexKind::GShare, 12, 8});
        GSharePredictor gshare(12, 8);
        SkewedPredictor gskewed(3, 11, 8, UpdatePolicy::Partial);
        table.row()
            .cell(label)
            .percentCell(aliasing.totalAliasing * 100.0)
            .percentCell(aliasing.conflict() * 100.0)
            .percentCell(simulate(gshare, trace).mispredictPercent())
            .percentCell(
                simulate(gskewed, trace).mispredictPercent());
    };

    measure("back-to-back", concatTraces({&a, &b}));
    for (const std::size_t quantum :
         {std::size_t(500'000), std::size_t(100'000),
          std::size_t(20'000)}) {
        measure("quantum " + formatCount(quantum),
                interleaveTraces({&a, &b}, quantum));
    }
    emitTable("summary", table);

    expectation(
        "Finer interleaving raises aliasing and misprediction for "
        "both designs (two working sets resident at once, history "
        "cross-pollution at every switch); the skewed organization "
        "keeps its edge throughout.");
    return finish();
}
