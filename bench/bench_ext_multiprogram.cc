/**
 * @file
 * Extension: multiprogrammed trace splicing.
 *
 * The OS studies the paper cites (Gloy et al.) observe that
 * *multiprogramming* — several processes time-sharing one
 * predictor — inflates aliasing beyond what any single process
 * shows. Here two benchmark traces are interleaved in round-robin
 * quanta (trace-level splicing, no regeneration) and the mix's
 * aliasing and misprediction are compared against the same
 * branches run back-to-back.
 *
 * The mixes are built serially (splicing mutates nothing shared),
 * then all simulation cells run on the SweepRunner thread pool and
 * all three-C measurements on the parallelMap pool; ordered
 * results keep output identical to the serial run at any
 * `--threads` setting.
 */

#include "bench_common.hh"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"
#include "trace/transform.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: multiprogrammed splicing",
           "groff + gs interleaved in shrinking quanta vs run "
           "back-to-back: aliasing at 4K entries (h=8) and "
           "misprediction of gshare-4K vs gskewed-3x2K.");

    const Trace &a = suite()[0]; // groff
    const Trace &b = suite()[1]; // gs

    std::vector<std::pair<std::string, Trace>> mixes;
    mixes.emplace_back("back-to-back", concatTraces({&a, &b}));
    for (const std::size_t quantum :
         {std::size_t(500'000), std::size_t(100'000),
          std::size_t(20'000)}) {
        mixes.emplace_back("quantum " + formatCount(quantum),
                           interleaveTraces({&a, &b}, quantum));
    }

    SweepRunner runner(sweepThreads(), blockRecords());
    std::vector<std::function<ThreeCsResult()>> aliasingCells;
    for (const auto &[label, trace] : mixes) {
        runner.enqueue(
            [] { return std::make_unique<GSharePredictor>(12, 8); },
            trace);
        runner.enqueue(
            [] {
                return std::make_unique<SkewedPredictor>(
                    3, 11, 8, UpdatePolicy::Partial);
            },
            trace);
        aliasingCells.push_back([&trace = trace] {
            return measureThreeCs(
                trace, IndexFunction{IndexKind::GShare, 12, 8});
        });
    }
    const std::vector<SimResult> results = runner.run();
    const auto aliasing = parallelMap(aliasingCells, sweepThreads());

    TextTable table({"mix", "total alias 4K", "conflict 4K",
                     "gshare-4K", "gskewed-3x2K"});
    std::size_t cell = 0;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        table.row()
            .cell(mixes[i].first)
            .percentCell(aliasing[i].totalAliasing * 100.0)
            .percentCell(aliasing[i].conflict() * 100.0)
            .percentCell(results[cell].mispredictPercent())
            .percentCell(results[cell + 1].mispredictPercent());
        cell += 2;
    }
    emitTable("summary", table);

    expectation(
        "Finer interleaving raises aliasing and misprediction for "
        "both designs (two working sets resident at once, history "
        "cross-pollution at every switch); the skewed organization "
        "keeps its edge throughout.");
    return finish();
}
