/**
 * @file
 * Shared plumbing for the experiment benches.
 *
 * Every bench binary reproduces one table or figure of the paper:
 * it loads the standard six-benchmark suite (honouring
 * BPRED_TRACE_SCALE / BPRED_TRACE_CACHE), prints our measured rows
 * through TextTable, and — where the paper gives concrete numbers —
 * prints the paper's reference values alongside for eyeball
 * comparison. Absolute values are not expected to match (our traces
 * are synthetic stand-ins for IBS-Ultrix); shapes and orderings are.
 */

#ifndef BPRED_BENCH_BENCH_COMMON_HH
#define BPRED_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "support/table.hh"
#include "trace/trace.hh"

namespace bpred::bench
{

/** Default trace scale for experiments (1.0 = 2M branches each). */
constexpr double defaultScale = 1.0;

/**
 * Load the six-benchmark suite once per binary.
 * Prints a short provenance banner to stdout.
 */
const std::vector<Trace> &suite();

/** Standard experiment banner: what the bench reproduces. */
void banner(const std::string &artifact, const std::string &claim);

/**
 * Print a closing note restating the shape the paper reports, so
 * the output is self-judging.
 */
void expectation(const std::string &text);

/** Misprediction percentage of spec-built predictor over trace. */
double mispredictPercent(const std::string &spec, const Trace &trace);

} // namespace bpred::bench

#endif // BPRED_BENCH_BENCH_COMMON_HH
