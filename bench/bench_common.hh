/**
 * @file
 * Shared plumbing for the experiment benches.
 *
 * Every bench binary reproduces one table or figure of the paper:
 * it loads the standard six-benchmark suite (honouring
 * BPRED_TRACE_SCALE / BPRED_TRACE_CACHE), prints our measured rows
 * through TextTable, and — where the paper gives concrete numbers —
 * prints the paper's reference values alongside for eyeball
 * comparison. Absolute values are not expected to match (our traces
 * are synthetic stand-ins for IBS-Ultrix); shapes and orderings are.
 *
 * Machine-readable output: every bench accepts `--json <path>`.
 * Rows routed through emitTable() (plus any emitSeries() /
 * emitStats() telemetry) are then also collected into one JSON
 * document and written to <path> by finish(), giving CI a
 * BENCH_*.json perf/accuracy trajectory per run. The canonical
 * main() shape is:
 *
 *   int main(int argc, char **argv) {
 *       init(argc, argv);
 *       ...
 *       emitTable(trace.name(), table);  // instead of table.print
 *       ...
 *       return finish();
 *   }
 */

#pragma once

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "support/stat_registry.hh"
#include "support/table.hh"
#include "trace/trace.hh"

namespace bpred::bench
{

/** Default trace scale for experiments (1.0 = 2M branches each). */
constexpr double defaultScale = 1.0;

/**
 * Parse bench command-line arguments (`--json <path>`,
 * `--threads <n>`, `--block-size <records>`); call first in
 * main(). Prints usage and exits with status 2 on unknown
 * arguments.
 */
void init(int argc, char **argv);

/**
 * As init(), but arguments the common layer does not recognise are
 * returned to the caller (in order) instead of aborting — for
 * benches with their own flags on top of the shared ones (e.g.
 * bench_serve_loadgen's --tenants). The caller owns rejecting
 * whatever it does not understand either.
 */
std::vector<std::string> initWithExtraArgs(int argc, char **argv);

/** True when `--json` capture is active. */
bool jsonEnabled();

/**
 * Worker threads requested via `--threads` (0 = none given; pass
 * it to SweepRunner, which then falls back to BPRED_THREADS / the
 * hardware concurrency).
 */
unsigned sweepThreads();

/**
 * Gang replay block size requested via `--block-size` (records per
 * cache-resident block; defaults to defaultReplayBlockRecords =
 * 8192). Pass to SweepRunner / GangSession. The resolved value is
 * recorded as `block_size` in the `--json` report so perf
 * artifacts are self-describing.
 */
std::size_t blockRecords();

/**
 * Load the six-benchmark suite once per binary.
 * Prints a short provenance banner to stdout.
 */
const std::vector<Trace> &suite();

/** Standard experiment banner: what the bench reproduces. */
void banner(const std::string &artifact, const std::string &claim);

/**
 * Print a closing note restating the shape the paper reports, so
 * the output is self-judging.
 */
void expectation(const std::string &text);

/**
 * Record an extra top-level field in the `--json` report document
 * (e.g. "repetitions", "simd_mode"), so bench artifacts are
 * self-describing. Later writes to the same key win. No-op when
 * `--json` is inactive.
 */
void recordReportField(const std::string &key, JsonValue value);

/**
 * Print @p table to stdout and, when `--json` is active, record it
 * in the report under @p section (typically the trace name; tables
 * within a section are kept in emission order).
 */
void emitTable(const std::string &section, const TextTable &table);

/**
 * Record a simulation result (windowed time series, top sites) in
 * the report under @p section as @p name. No stdout output.
 */
void emitResult(const std::string &section, const std::string &name,
                const SimResult &result);

/**
 * Record a stat-registry snapshot (e.g. probe counters) in the
 * report under @p section as @p name. No stdout output.
 */
void emitStats(const std::string &section, const std::string &name,
               const StatRegistry &stats);

/**
 * Write the JSON report to the `--json` path, if one was given.
 * The report records the resolved worker-thread count and the
 * bench's elapsed wall-clock seconds since init(), so a series of
 * BENCH_*.json artifacts doubles as a perf trajectory.
 * Returns main()'s exit status.
 */
int finish();

/** Misprediction percentage of spec-built predictor over trace. */
double mispredictPercent(const std::string &spec, const Trace &trace);

} // namespace bpred::bench

