/**
 * @file
 * Figure 8: 3N-entry gskewed (partial and total update) vs an
 * N-entry fully-associative LRU predictor, 4-bit history, 2-bit
 * counters. FA misses fall back to static always-taken.
 *
 * This is the paper's direct test that skewing really removes
 * conflict aliasing: the FA table has none by construction.
 */

#include "bench_common.hh"

#include "aliasing/falru_predictor.hh"
#include "core/skewed_predictor.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 8",
           "gskewed-3xN (partial & total) vs N-entry FA-LRU "
           "predictor, 4-bit history.");

    constexpr unsigned historyBits = 4;

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"N", "FA-LRU N", "gskewed 3xN partial",
                         "gskewed 3xN total"});
        for (unsigned bits = 9; bits <= 13; ++bits) {
            const u64 n = u64(1) << bits;
            FaLruPredictor fa_lru(n, historyBits);
            SkewedPredictor partial(3, bits, historyBits,
                                    UpdatePolicy::Partial);
            SkewedPredictor total(3, bits, historyBits,
                                  UpdatePolicy::Total);
            table.row()
                .cell(formatEntries(n))
                .percentCell(
                    simulate(fa_lru, trace).mispredictPercent())
                .percentCell(
                    simulate(partial, trace).mispredictPercent())
                .percentCell(
                    simulate(total, trace).mispredictPercent());
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "gskewed-3xN with partial update tracks (slightly beats) "
        "the N-entry fully-associative LRU yardstick; with total "
        "update it is slightly worse. Partial update effectively "
        "buys back the capacity the redundancy spends.");
    return finish();
}
