/**
 * @file
 * Figure 2: miss percentages in tables tagged with (address,
 * history) pairs — 12-bit history.
 *
 * Same measurement as Figure 1 with the longer history: the
 * substream working set is several times larger, so capacity
 * aliasing persists to ~16K entries, and gselect degenerates (few
 * or no address bits survive in the index).
 */

#include "bench_common.hh"

#include "aliasing/three_c.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 2",
           "Aliasing (tagged-table miss %) vs table size, 12-bit "
           "history: gshare-DM vs gselect-DM vs fully-associative "
           "LRU.");

    constexpr unsigned historyBits = 12;

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"entries", "gshare DM", "gselect DM",
                         "FA-LRU", "conflict(gshare)",
                         "capacity", "compulsory"});
        for (unsigned bits = 10; bits <= 18; bits += 2) {
            const std::vector<IndexFunction> functions = {
                {IndexKind::GShare, bits, historyBits},
                {IndexKind::GSelect, bits, historyBits},
            };
            const auto results =
                measureThreeCsMulti(trace, functions);
            const ThreeCsResult &gshare = results[0];
            const ThreeCsResult &gselect = results[1];
            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(gshare.totalAliasing * 100.0)
                .percentCell(gselect.totalAliasing * 100.0)
                .percentCell(gshare.faMissRatio * 100.0)
                .percentCell(gshare.conflict() * 100.0)
                .percentCell(gshare.capacity() * 100.0)
                .percentCell(gshare.compulsory * 100.0);
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "The gshare-gselect gap is much wider than at 4 bits "
        "(gselect keeps only ~4 address bits at 64K entries); "
        "capacity vanishes around 16K entries instead of 4K; above "
        "that, conflict dominates.");
    return finish();
}
