/**
 * @file
 * Ablation A4: context for the paper's choice of gshare as the
 * reference single-bank scheme — the wider baseline field at
 * comparable storage (32 Kbit of counters).
 *
 * All (spec x trace) cells run on the SweepRunner thread pool via
 * factory specs; the ordered results keep output identical to the
 * serial run at any `--threads` setting.
 */

#include "bench_common.hh"

#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: baseline field",
           "Baselines at ~32Kbit storage: static, bimodal, "
           "gselect, gshare, PAg, hybrid, gskewed, e-gskew.");

    const std::vector<std::string> specs = {
        "static:taken",     "bimodal:14",
        "gselect:14:10",    "gshare:14:10",
        "pag:12:10",        "hybrid:13:10",
        "gskewed:3:12:10",  "egskew:12:10",
    };

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const std::string &spec : specs) {
        for (const Trace &trace : suite()) {
            runner.enqueue(spec, trace);
        }
    }
    const std::vector<SimResult> results = runner.run();

    TextTable table([&] {
        std::vector<std::string> headers = {"predictor"};
        for (const Trace &trace : suite()) {
            headers.push_back(trace.name());
        }
        headers.push_back("mean");
        return headers;
    }());

    std::size_t cell = 0;
    for (const std::string &spec : specs) {
        table.row().cell(spec);
        double sum = 0.0;
        for (std::size_t i = 0; i < suite().size(); ++i) {
            const double pct = results[cell++].mispredictPercent();
            table.percentCell(pct);
            sum += pct;
        }
        table.percentCell(sum /
                          static_cast<double>(suite().size()));
    }
    emitTable("summary", table);

    expectation(
        "gshare < gselect (McFarling), both < bimodal < static; "
        "the skewed organizations sit at the top of the field at "
        "equal or lower storage.");
    return finish();
}
