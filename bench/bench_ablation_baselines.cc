/**
 * @file
 * Ablation A4: context for the paper's choice of gshare as the
 * reference single-bank scheme — the wider baseline field at
 * comparable storage (32 Kbit of counters).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: baseline field",
           "Baselines at ~32Kbit storage: static, bimodal, "
           "gselect, gshare, PAg, hybrid, gskewed, e-gskew.");

    const std::vector<std::string> specs = {
        "static:taken",     "bimodal:14",
        "gselect:14:10",    "gshare:14:10",
        "pag:12:10",        "hybrid:13:10",
        "gskewed:3:12:10",  "egskew:12:10",
    };

    TextTable table([&] {
        std::vector<std::string> headers = {"predictor"};
        for (const Trace &trace : suite()) {
            headers.push_back(trace.name());
        }
        headers.push_back("mean");
        return headers;
    }());

    for (const std::string &spec : specs) {
        table.row().cell(spec);
        double sum = 0.0;
        for (const Trace &trace : suite()) {
            const double pct = mispredictPercent(spec, trace);
            table.percentCell(pct);
            sum += pct;
        }
        table.percentCell(sum /
                          static_cast<double>(suite().size()));
    }
    emitTable("summary", table);

    expectation(
        "gshare < gselect (McFarling), both < bimodal < static; "
        "the skewed organizations sit at the top of the field at "
        "equal or lower storage.");
    return finish();
}
