/**
 * @file
 * Extension: cold-start recovery under periodic state flushes.
 *
 * Heavyweight context switches can wipe predictor state (the
 * motivation of Evers et al., cited in §1). This bench flushes
 * each predictor every F branches and reports the misprediction
 * inflation over the no-flush baseline: designs whose accuracy
 * rests on more state per branch (bigger tables, longer history)
 * re-warm slower.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: flush recovery",
           "Mispredict % with predictor state wiped every F "
           "branches (groff trace, h=10 designs).");

    const Trace &trace = suite().front(); // groff

    TextTable table({"flush interval", "bimodal-16K",
                     "gshare-16K", "gskewed-3x4K",
                     "e-gskew-3x4K"});

    auto run = [&](Predictor &predictor, u64 interval) {
        predictor.reset();
        SimOptions options;
        options.flushInterval = interval; // 0 = never flush
        return simulateWithOptions(predictor, trace, options)
            .mispredictPercent();
    };

    BimodalPredictor bimodal(14);
    GSharePredictor gshare(14, 10);
    SkewedPredictor gskewed(3, 12, 10, UpdatePolicy::Partial);
    SkewedPredictor egskew(makeEnhancedConfig(12, 10));

    for (const u64 interval :
         {u64(0), u64(1'000'000), u64(200'000), u64(50'000),
          u64(10'000)}) {
        table.row()
            .cell(interval == 0 ? std::string("never")
                                : formatCount(interval))
            .percentCell(run(bimodal, interval))
            .percentCell(run(gshare, interval))
            .percentCell(run(gskewed, interval))
            .percentCell(run(egskew, interval));
    }
    emitTable("summary", table);

    expectation(
        "All designs degrade as flushes become frequent; the "
        "simple bimodal table re-warms fastest (least state per "
        "prediction), while global-history designs pay more — the "
        "regime where Evers et al. proposed hybrids. The skewed "
        "designs degrade no worse than gshare.");
    return finish();
}
