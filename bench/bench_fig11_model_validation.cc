/**
 * @file
 * Figure 11: extrapolated (analytical model driven by measured
 * last-use distances) vs simulated misprediction, 4-bit history,
 * 1-bit counters, total update — for a 3x1K gskewed.
 *
 * The paper's model should track simulation and *overestimate* it
 * slightly (constructive aliasing is unmodeled).
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "model/extrapolation.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 11",
           "Analytical extrapolation vs measured simulation "
           "(1-bit counters, total update, h=4): gskewed-3x1K and "
           "gshare-4K.");

    constexpr unsigned historyBits = 4;
    constexpr unsigned bankBits = 10;   // 3x1K gskewed
    constexpr unsigned dmBits = 12;     // 4K gshare

    TextTable table({"benchmark", "b (bias)", "unaliased 1-bit",
                     "gskewed model", "gskewed measured",
                     "gshare model", "gshare measured"});

    for (const Trace &trace : suite()) {
        const TraceModelInputs inputs =
            measureModelInputs(trace, historyBits);
        const ExtrapolationResult model = extrapolateMispredictions(
            trace, historyBits, u64(1) << bankBits,
            u64(1) << dmBits, inputs);

        SkewedPredictor gskewed(3, bankBits, historyBits,
                                UpdatePolicy::Total, 1);
        GSharePredictor gshare(dmBits, historyBits, 1);
        const double skew_measured =
            simulate(gskewed, trace).mispredictPercent();
        const double share_measured =
            simulate(gshare, trace).mispredictPercent();

        table.row()
            .cell(trace.name())
            .cell(inputs.biasTaken, 3)
            .percentCell(inputs.unaliasedMispredict * 100.0)
            .percentCell(model.skewedExtrapolated * 100.0)
            .percentCell(skew_measured)
            .percentCell(model.directMappedExtrapolated * 100.0)
            .percentCell(share_measured);
    }
    emitTable("summary", table);

    expectation(
        "Model tracks measurement benchmark-by-benchmark and "
        "consistently overestimates slightly — constructive "
        "aliasing, absent from the model, recovers a little "
        "accuracy in reality.");
    return finish();
}
