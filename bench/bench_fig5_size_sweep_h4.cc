/**
 * @file
 * Figure 5: misprediction percentage vs predictor size, 4-bit
 * history — gshare (1 bank of N) vs gskewed (3 banks of N/4...),
 * 2-bit counters, partial update.
 *
 * The paper plots both designs over a large size spectrum; the
 * claim to check is that in the conflict-dominated region, gskewed
 * at roughly half the total storage matches or beats gshare.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 5",
           "Mispredict % vs size, 4-bit history: gshare-N vs "
           "gskewed-3x(N/4) and gskewed at equal total entries.");

    constexpr unsigned historyBits = 4;

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"gshare entries", "gshare",
                         "gskewed 3x(N/4)", "gskewed 3xN",
                         "3xN total entries"});
        for (unsigned bits = 10; bits <= 16; ++bits) {
            GSharePredictor gshare(bits, historyBits);
            // Same-storage-class comparison: 3 banks of N/4 has
            // 0.75x the storage of the N-entry gshare.
            SkewedPredictor smaller(3, bits - 2, historyBits,
                                    UpdatePolicy::Partial);
            // Equal-bank comparison: 3 banks of N (3x storage).
            SkewedPredictor bigger(3, bits, historyBits,
                                   UpdatePolicy::Partial);

            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(
                    simulate(gshare, trace).mispredictPercent())
                .percentCell(
                    simulate(smaller, trace).mispredictPercent())
                .percentCell(
                    simulate(bigger, trace).mispredictPercent())
                .cell(formatEntries(3 * (u64(1) << bits)));
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "Once gshare's capacity aliasing has vanished (>= ~4K "
        "entries), gskewed-3x(N/4) with 25% less storage matches "
        "or beats gshare-N; gskewed saturates by ~3x4K while "
        "gshare keeps improving to 64K.");
    return finish();
}
