/**
 * @file
 * Figure 5: misprediction percentage vs predictor size, 4-bit
 * history — gshare (1 bank of N) vs gskewed (3 banks of N/4...),
 * 2-bit counters, partial update.
 *
 * The paper plots both designs over a large size spectrum; the
 * claim to check is that in the conflict-dominated region, gskewed
 * at roughly half the total storage matches or beats gshare.
 *
 * All (trace x size x design) cells run on the SweepRunner thread
 * pool; results come back in submission order, so the tables are
 * identical to the serial run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 5",
           "Mispredict % vs size, 4-bit history: gshare-N vs "
           "gskewed-3x(N/4) and gskewed at equal total entries.");

    constexpr unsigned historyBits = 4;
    const std::vector<unsigned> sizeBits = {10, 11, 12, 13,
                                            14, 15, 16};

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const Trace &trace : suite()) {
        for (const unsigned bits : sizeBits) {
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<GSharePredictor>(
                        bits, historyBits);
                },
                trace);
            // Same-storage-class comparison: 3 banks of N/4 has
            // 0.75x the storage of the N-entry gshare.
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits - 2, historyBits,
                        UpdatePolicy::Partial);
                },
                trace);
            // Equal-bank comparison: 3 banks of N (3x storage).
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits, historyBits,
                        UpdatePolicy::Partial);
                },
                trace);
        }
    }
    const std::vector<SimResult> results = runner.run();

    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"gshare entries", "gshare",
                         "gskewed 3x(N/4)", "gskewed 3xN",
                         "3xN total entries"});
        for (const unsigned bits : sizeBits) {
            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(results[cell].mispredictPercent())
                .percentCell(results[cell + 1].mispredictPercent())
                .percentCell(results[cell + 2].mispredictPercent())
                .cell(formatEntries(3 * (u64(1) << bits)));
            cell += 3;
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "Once gshare's capacity aliasing has vanished (>= ~4K "
        "entries), gskewed-3x(N/4) with 25% less storage matches "
        "or beats gshare-N; gskewed saturates by ~3x4K while "
        "gshare keeps improving to 64K.");
    return finish();
}
