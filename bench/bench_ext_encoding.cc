/**
 * @file
 * Extension (§7 future work, "distributed predictor encodings"):
 * the shared-hysteresis encoding — 1.5 bits/entry instead of 2 —
 * compared against full 2-bit banks at equal geometry and at equal
 * storage.
 */

#include "bench_common.hh"

#include "core/shared_hysteresis.hh"
#include "core/skewed_predictor.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: distributed encodings",
           "Shared-hysteresis (1.5 bit/entry) vs full 2-bit gskewed "
           "banks, h=8, partial update.");

    TextTable table({"benchmark", "full 3x4K (24Kb)",
                     "sh 3x4K (18Kb)", "sh 3x8K (36Kb)",
                     "full 3x8K (48Kb)"});
    for (const Trace &trace : suite()) {
        SkewedPredictor::Config config;
        config.numBanks = 3;
        config.bankIndexBits = 12;
        config.historyBits = 8;

        SkewedPredictor full_4k(config);
        SharedHysteresisSkewedPredictor sh_4k(config);
        config.bankIndexBits = 13;
        SharedHysteresisSkewedPredictor sh_8k(config);
        SkewedPredictor full_8k(config);

        table.row()
            .cell(trace.name())
            .percentCell(simulate(full_4k, trace).mispredictPercent())
            .percentCell(simulate(sh_4k, trace).mispredictPercent())
            .percentCell(simulate(sh_8k, trace).mispredictPercent())
            .percentCell(
                simulate(full_8k, trace).mispredictPercent());
    }
    emitTable("summary", table);

    expectation(
        "At equal geometry the 25%-cheaper encoding costs only a "
        "little accuracy (hysteresis sharing rarely flips a "
        "direction); spending the saved bits on more entries "
        "(sh 3x8K at 36Kb vs full 3x8K at 48Kb) buys most of the "
        "bigger table's accuracy at 75% of its cost.");
    return finish();
}
