/**
 * @file
 * Figure 12: the enhanced skewed predictor. 3x4K e-gskew vs 3x4K
 * gskewed vs 32K gshare across history lengths, partial update.
 *
 * Beyond the paper's figure, this bench dissects the h=12 e-gskew
 * with the telemetry layer: per-bank vote behaviour (how often each
 * bank dissents from the majority, and how often it is right), the
 * partial-update skip counts that explain the policy's capacity
 * win, a windowed misprediction time series, and the worst branch
 * sites by misprediction count. All of it lands in the `--json`
 * report for trajectory tracking.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "support/probe.hh"

using namespace bpred;
using namespace bpred::bench;

namespace
{

/**
 * One instrumented e-gskew run: bank-probe table, misprediction
 * timeline, and top misprediction sites, printed and recorded.
 */
void
dissectEnhanced(const Trace &trace, unsigned history)
{
    SkewedPredictor egskew(makeEnhancedConfig(12, history));
    CountingProbe probe;
    SimOptions options;
    options.windowSize = 16384;
    options.topSites = 8;
    options.probe = &probe;
    const SimResult result =
        simulateWithOptions(egskew, trace, options);

    const std::string label =
        "e-gskew-3x4K-h" + std::to_string(history);
    std::cout << "\n" << label << " bank dissection ("
              << trace.name() << "):\n";
    TextTable banks({"bank", "disagree", "correct", "partial skips",
                     "writes"});
    StatRegistry &stats = probe.registry();
    for (unsigned bank = 0; bank < egskew.numBanks(); ++bank) {
        const std::string prefix = "bank" + std::to_string(bank);
        banks.row()
            .cell(u64(bank))
            .percentCell(stats.ratio(prefix + ".disagree").percent())
            .percentCell(stats.ratio(prefix + ".correct").percent())
            .cell(stats.counter(prefix + ".skips.partial"))
            .cell(stats.counter(prefix + ".writes"));
    }
    emitTable(trace.name(), banks);
    emitStats(trace.name(), label, stats);
    emitResult(trace.name(), label, result);
}

} // namespace

int
main(int argc, char **argv)
{
    init(argc, argv);

    banner("Figure 12",
           "Mispredict % vs history length: e-gskew-3x4K vs "
           "gskewed-3x4K vs gshare-32K (less than half the "
           "storage).");

    const std::vector<unsigned> historyLengths = {0, 2,  4,  6,  8,
                                                  10, 12, 14, 16};

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"history", "gshare-32K", "gskewed-3x4K",
                         "e-gskew-3x4K"});
        for (unsigned history : historyLengths) {
            GSharePredictor gshare(15, history);
            SkewedPredictor gskewed(3, 12, history,
                                    UpdatePolicy::Partial);
            SkewedPredictor egskew(makeEnhancedConfig(12, history));
            table.row()
                .cell(u64(history))
                .percentCell(
                    simulate(gshare, trace).mispredictPercent())
                .percentCell(
                    simulate(gskewed, trace).mispredictPercent())
                .percentCell(
                    simulate(egskew, trace).mispredictPercent());
        }
        emitTable(trace.name(), table);

        dissectEnhanced(trace, 12);
    }

    expectation(
        "gskewed and e-gskew indistinguishable at short history; "
        "e-gskew pulls ahead at long history (best around 11-12 "
        "bits vs 8-10 for gskewed) and stays at the level of the "
        "32K gshare with <half the storage. Bank 0 (address-only "
        "index) should dissent most at long history yet stay "
        "trustworthy — that dissent is what e-gskew trades on.");
    return finish();
}
