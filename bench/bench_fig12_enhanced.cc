/**
 * @file
 * Figure 12: the enhanced skewed predictor. 3x4K e-gskew vs 3x4K
 * gskewed vs 32K gshare across history lengths, partial update.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"

int
main()
{
    using namespace bpred;
    using namespace bpred::bench;

    banner("Figure 12",
           "Mispredict % vs history length: e-gskew-3x4K vs "
           "gskewed-3x4K vs gshare-32K (less than half the "
           "storage).");

    const std::vector<unsigned> historyLengths = {0, 2,  4,  6,  8,
                                                  10, 12, 14, 16};

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"history", "gshare-32K", "gskewed-3x4K",
                         "e-gskew-3x4K"});
        for (unsigned history : historyLengths) {
            GSharePredictor gshare(15, history);
            SkewedPredictor gskewed(3, 12, history,
                                    UpdatePolicy::Partial);
            SkewedPredictor egskew(makeEnhancedConfig(12, history));
            table.row()
                .cell(u64(history))
                .percentCell(
                    simulate(gshare, trace).mispredictPercent())
                .percentCell(
                    simulate(gskewed, trace).mispredictPercent())
                .percentCell(
                    simulate(egskew, trace).mispredictPercent());
        }
        table.print(std::cout);
    }

    expectation(
        "gskewed and e-gskew indistinguishable at short history; "
        "e-gskew pulls ahead at long history (best around 11-12 "
        "bits vs 8-10 for gskewed) and stays at the level of the "
        "32K gshare with <half the storage.");
    return 0;
}
