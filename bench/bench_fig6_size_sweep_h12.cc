/**
 * @file
 * Figure 6: misprediction percentage vs predictor size, 12-bit
 * history — gshare vs gskewed, 2-bit counters, partial update.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 6",
           "Mispredict % vs size, 12-bit history: gshare-N vs "
           "gskewed-3x(N/4) and gskewed-3xN.");

    constexpr unsigned historyBits = 12;

    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"gshare entries", "gshare",
                         "gskewed 3x(N/4)", "gskewed 3xN",
                         "3xN total entries"});
        for (unsigned bits = 10; bits <= 18; bits += 2) {
            GSharePredictor gshare(bits, historyBits);
            SkewedPredictor smaller(3, bits - 2, historyBits,
                                    UpdatePolicy::Partial);
            SkewedPredictor bigger(3, bits, historyBits,
                                   UpdatePolicy::Partial);

            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(
                    simulate(gshare, trace).mispredictPercent())
                .percentCell(
                    simulate(smaller, trace).mispredictPercent())
                .percentCell(
                    simulate(bigger, trace).mispredictPercent())
                .cell(formatEntries(3 * (u64(1) << bits)));
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "Same shape as Figure 5 but shifted: capacity persists to "
        "~16K, gskewed saturates around 3x16K while gshare keeps "
        "gaining to 256K; gskewed is notably better at removing "
        "pathological aliasing (nroff in the paper).");
    return finish();
}
