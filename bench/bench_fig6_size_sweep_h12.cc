/**
 * @file
 * Figure 6: misprediction percentage vs predictor size, 12-bit
 * history — gshare vs gskewed, 2-bit counters, partial update.
 *
 * All (trace x size x design) cells run on the SweepRunner thread
 * pool; results come back in submission order, so the tables are
 * identical to the serial run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 6",
           "Mispredict % vs size, 12-bit history: gshare-N vs "
           "gskewed-3x(N/4) and gskewed-3xN.");

    constexpr unsigned historyBits = 12;
    const std::vector<unsigned> sizeBits = {10, 12, 14, 16, 18};

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const Trace &trace : suite()) {
        for (const unsigned bits : sizeBits) {
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<GSharePredictor>(
                        bits, historyBits);
                },
                trace);
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits - 2, historyBits,
                        UpdatePolicy::Partial);
                },
                trace);
            runner.enqueue(
                [bits, historyBits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits, historyBits,
                        UpdatePolicy::Partial);
                },
                trace);
        }
    }
    const std::vector<SimResult> results = runner.run();

    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"gshare entries", "gshare",
                         "gskewed 3x(N/4)", "gskewed 3xN",
                         "3xN total entries"});
        for (const unsigned bits : sizeBits) {
            table.row()
                .cell(formatEntries(u64(1) << bits))
                .percentCell(results[cell].mispredictPercent())
                .percentCell(results[cell + 1].mispredictPercent())
                .percentCell(results[cell + 2].mispredictPercent())
                .cell(formatEntries(3 * (u64(1) << bits)));
            cell += 3;
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "Same shape as Figure 5 but shifted: capacity persists to "
        "~16K, gskewed saturates around 3x16K while gshare keeps "
        "gaining to 256K; gskewed is notably better at removing "
        "pathological aliasing (nroff in the paper).");
    return finish();
}
