/**
 * @file
 * Ablation A1 (§5.1, "varying number of predictor banks"): 1 vs 3
 * vs 5 banks at equal total storage.
 *
 * The paper reports (without a figure) that 5 banks gain almost
 * nothing over 3, and that bank size beats bank count.
 *
 * All (trace x configuration) cells run on the SweepRunner thread
 * pool; the ordered results keep output identical to the serial
 * run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: bank count",
           "1-bank (gshare) vs 3-bank vs 5-bank skewed at similar "
           "total entries, h=8, partial update.");

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const Trace &trace : suite()) {
        // ~12K single bank: nearest power of two is 16K; note it.
        runner.enqueue(
            [] { return std::make_unique<GSharePredictor>(14, 8); },
            trace);
        runner.enqueue(
            [] {
                return std::make_unique<SkewedPredictor>(
                    3, 12, 8, UpdatePolicy::Partial);
            },
            trace);
        runner.enqueue(
            [] {
                return std::make_unique<SkewedPredictor>(
                    5, 12, 8, UpdatePolicy::Partial);
            },
            trace);
        runner.enqueue(
            [] {
                return std::make_unique<SkewedPredictor>(
                    3, 13, 8, UpdatePolicy::Partial);
            },
            trace);
    }
    const std::vector<SimResult> results = runner.run();

    TextTable table({"benchmark", "gshare-12K*", "gskewed 3x4K",
                     "gskewed 5x4K", "gskewed 3x8K"});
    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        table.row()
            .cell(trace.name())
            .percentCell(results[cell].mispredictPercent())
            .percentCell(results[cell + 1].mispredictPercent())
            .percentCell(results[cell + 2].mispredictPercent())
            .percentCell(results[cell + 3].mispredictPercent());
        cell += 4;
    }
    emitTable("summary", table);
    std::cout << "(* 16K gshare shown: the nearest one-bank "
                 "power-of-two to 12K total)\n";

    expectation(
        "5x4K barely improves on 3x4K despite 67% more storage; "
        "spending the same transistors on bigger banks (3x8K) "
        "helps more — the paper's recommendation.");
    return finish();
}
