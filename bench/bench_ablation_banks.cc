/**
 * @file
 * Ablation A1 (§5.1, "varying number of predictor banks"): 1 vs 3
 * vs 5 banks at equal total storage.
 *
 * The paper reports (without a figure) that 5 banks gain almost
 * nothing over 3, and that bank size beats bank count.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: bank count",
           "1-bank (gshare) vs 3-bank vs 5-bank skewed at similar "
           "total entries, h=8, partial update.");

    TextTable table({"benchmark", "gshare-12K*", "gskewed 3x4K",
                     "gskewed 5x4K", "gskewed 3x8K"});
    for (const Trace &trace : suite()) {
        // ~12K single bank: nearest power of two is 16K; note it.
        GSharePredictor gshare(14, 8);
        SkewedPredictor three(3, 12, 8, UpdatePolicy::Partial);
        SkewedPredictor five(5, 12, 8, UpdatePolicy::Partial);
        SkewedPredictor three_big(3, 13, 8, UpdatePolicy::Partial);
        table.row()
            .cell(trace.name())
            .percentCell(simulate(gshare, trace).mispredictPercent())
            .percentCell(simulate(three, trace).mispredictPercent())
            .percentCell(simulate(five, trace).mispredictPercent())
            .percentCell(
                simulate(three_big, trace).mispredictPercent());
    }
    emitTable("summary", table);
    std::cout << "(* 16K gshare shown: the nearest one-bank "
                 "power-of-two to 12K total)\n";

    expectation(
        "5x4K barely improves on 3x4K despite 67% more storage; "
        "spending the same transistors on bigger banks (3x8K) "
        "helps more — the paper's recommendation.");
    return finish();
}
