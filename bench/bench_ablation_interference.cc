/**
 * @file
 * Extension: Young/Gloy/Smith interference decomposition of a
 * gshare table on our workloads — the empirical basis for the
 * paper's note that constructive aliasing is much rarer than
 * destructive (why the model's overestimate in Fig. 11 is small).
 *
 * Each trace's classification is an independent one-pass
 * measurement, so the sweep runs on the parallelMap worker pool;
 * ordered results keep output identical to the serial run at any
 * `--threads` setting.
 */

#include "bench_common.hh"

#include <functional>

#include "aliasing/interference.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: interference classes",
           "Destructive vs harmless vs constructive aliasing in a "
           "4K-entry gshare table, h=8.");

    std::vector<std::function<InterferenceResult()>> cells;
    for (const Trace &trace : suite()) {
        cells.push_back([&trace] {
            return classifyInterference(
                trace, IndexFunction{IndexKind::GShare, 12, 8});
        });
    }
    const auto measured = parallelMap(cells, sweepThreads());

    TextTable table({"benchmark", "aliased %", "harmless %",
                     "destructive %", "constructive %",
                     "destr/constr"});
    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        const InterferenceResult &result = measured[cell++];
        const double n =
            static_cast<double>(result.dynamicBranches);
        const double aliased = 100.0 *
            static_cast<double>(result.harmless +
                                result.destructive +
                                result.constructive) /
            n;
        table.row()
            .cell(trace.name())
            .percentCell(aliased)
            .percentCell(100.0 *
                         static_cast<double>(result.harmless) / n)
            .percentCell(result.destructiveRatio() * 100.0)
            .percentCell(result.constructiveRatio() * 100.0)
            .cell(result.constructive == 0
                      ? static_cast<double>(result.destructive)
                      : static_cast<double>(result.destructive) /
                          static_cast<double>(result.constructive),
                  2);
    }
    emitTable("summary", table);

    expectation(
        "Most aliased lookups are harmless; among the harmful "
        "ones, destructive outnumbers constructive several-fold "
        "(Young et al.'s observation, cited in §1).");
    return finish();
}
