/**
 * @file
 * Ablation A2 (§4.1/§5.1): partial vs total update across sizes
 * and history lengths.
 *
 * All (size x trace x policy) cells run on the SweepRunner thread
 * pool; the ordered results keep output identical to the serial
 * run at any `--threads` setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: update policy",
           "gskewed partial vs total update across bank sizes "
           "(h=8) — partial should win consistently.");

    const std::vector<unsigned> bankBits = {10, 12};

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const unsigned bits : bankBits) {
        for (const Trace &trace : suite()) {
            runner.enqueue(
                [bits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits, 8, UpdatePolicy::Partial);
                },
                trace);
            runner.enqueue(
                [bits] {
                    return std::make_unique<SkewedPredictor>(
                        3, bits, 8, UpdatePolicy::Total);
                },
                trace);
        }
    }
    const std::vector<SimResult> results = runner.run();

    std::size_t cell = 0;
    for (const unsigned bits : bankBits) {
        std::cout << "\nBank size " << formatEntries(u64(1) << bits)
                  << " (3 banks):\n";
        TextTable table({"benchmark", "partial", "total",
                         "total/partial"});
        for (const Trace &trace : suite()) {
            const double p = results[cell].mispredictPercent();
            const double t = results[cell + 1].mispredictPercent();
            cell += 2;
            table.row()
                .cell(trace.name())
                .percentCell(p)
                .percentCell(t)
                .cell(t / p, 3);
        }
        emitTable(formatEntries(u64(1) << bits), table);
    }

    expectation(
        "Partial update consistently at or below total update: "
        "not updating a dissenting bank on a correct vote leaves "
        "that entry serving its own substream, effectively "
        "increasing capacity.");
    return finish();
}
