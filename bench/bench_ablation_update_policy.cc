/**
 * @file
 * Ablation A2 (§4.1/§5.1): partial vs total update across sizes
 * and history lengths.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Ablation: update policy",
           "gskewed partial vs total update across bank sizes "
           "(h=8) — partial should win consistently.");

    for (const unsigned bits : {10u, 12u}) {
        std::cout << "\nBank size " << formatEntries(u64(1) << bits)
                  << " (3 banks):\n";
        TextTable table({"benchmark", "partial", "total",
                         "total/partial"});
        for (const Trace &trace : suite()) {
            SkewedPredictor partial(3, bits, 8,
                                    UpdatePolicy::Partial);
            SkewedPredictor total(3, bits, 8, UpdatePolicy::Total);
            const double p =
                simulate(partial, trace).mispredictPercent();
            const double t =
                simulate(total, trace).mispredictPercent();
            table.row()
                .cell(trace.name())
                .percentCell(p)
                .percentCell(t)
                .cell(t / p, 3);
        }
        emitTable(formatEntries(u64(1) << bits), table);
    }

    expectation(
        "Partial update consistently at or below total update: "
        "not updating a dissenting bank on a correct vote leaves "
        "that entry serving its own substream, effectively "
        "increasing capacity.");
    return finish();
}
