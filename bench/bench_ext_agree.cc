/**
 * @file
 * Extension: two ISCA'97 answers to the same aliasing problem.
 *
 * The agree predictor (Sprangle et al.) *converts* interference
 * (both fighters want the counter to say "agree with my bias");
 * the skewed predictor (this paper) *disperses* it (conflicting
 * pairs rarely collide in a second bank). This bench runs both,
 * plus gshare, at comparable storage, and uses the interference
 * classifier to show the mechanism: agree shrinks the destructive
 * share, gskewed shrinks the aliased share.
 */

#include "bench_common.hh"

#include "aliasing/interference.hh"
#include "core/skewed_predictor.hh"
#include "predictors/agree.hh"
#include "predictors/bimode.hh"
#include "predictors/yags.hh"
#include "predictors/gshare.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: the 1997 de-aliasing designs",
           "Interference conversion (agree) vs segregation "
           "(bi-mode) vs dispersal (gskewed) at ~32-40Kbit, h=10.");

    TextTable table({"benchmark", "gshare-16K", "agree-16K",
                     "bimode", "yags", "gskewed-3x4K",
                     "destr% gshare"});
    for (const Trace &trace : suite()) {
        GSharePredictor gshare(14, 10);
        AgreePredictor agree(14, 10, 12);
        BiModePredictor bimode(13, 10, 12); // 2x8K + 4K choice
        YagsPredictor yags(11, 10, 13);     // 2x2K tagged + 8K choice
        SkewedPredictor gskewed(3, 12, 10, UpdatePolicy::Partial);

        const InterferenceResult interference = classifyInterference(
            trace, IndexFunction{IndexKind::GShare, 14, 10});

        table.row()
            .cell(trace.name())
            .percentCell(simulate(gshare, trace).mispredictPercent())
            .percentCell(simulate(agree, trace).mispredictPercent())
            .percentCell(simulate(bimode, trace).mispredictPercent())
            .percentCell(simulate(yags, trace).mispredictPercent())
            .percentCell(
                simulate(gskewed, trace).mispredictPercent())
            .percentCell(interference.destructiveRatio() * 100.0);
    }
    emitTable("summary", table);

    expectation(
        "Both anti-aliasing designs track (or beat) the plain "
        "gshare at equal storage; their relative order depends on "
        "how much of the aliasing is destructive (last column) "
        "and how well first-outcome bias bits fit the workload.");
    return finish();
}
