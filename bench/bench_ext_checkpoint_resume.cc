/**
 * @file
 * Extension: checkpoint/resume fidelity and the cost of losing
 * predictor state.
 *
 * Splits each trace at the midpoint and finishes it three ways:
 * uninterrupted, resumed from a snapshot taken at the split, and
 * resumed cold (state discarded at the split). Snapshot resume must
 * reproduce the uninterrupted misprediction count *exactly* — the
 * bench exits nonzero otherwise, making it a CI gate for the
 * snapshot format — while the cold restart shows how much accuracy
 * a state-losing context switch costs each design.
 */

#include "bench_common.hh"

#include <memory>
#include <sstream>

#include "sim/factory.hh"
#include "sim/session.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: checkpoint/resume",
           "Mispredict % finishing each trace uninterrupted, from a "
           "midpoint snapshot, and from a midpoint cold restart.");

    const char *specs[] = {"gshare:14:12", "egskew:12:11"};

    bool snapshot_faithful = true;
    for (const char *spec : specs) {
        TextTable table({"trace", "uninterrupted", "resumed",
                         "cold resume", "snapshot bytes"});

        for (const Trace &trace : suite()) {
            const std::size_t half = trace.size() / 2;
            const BranchRecord *records = trace.records().data();

            auto straight = makePredictor(spec);
            const SimResult uninterrupted =
                simulate(*straight, trace);

            // First half on a fresh predictor, snapshot at the
            // split.
            auto first = makePredictor(spec);
            SimSession first_session(*first, SimOptions(),
                                     trace.name());
            first_session.feed(records, half);
            const SimResult head = first_session.finish();

            std::ostringstream checkpoint;
            savePredictorState(*first, checkpoint);
            const std::string state = checkpoint.str();

            // Resume a fresh predictor from the snapshot.
            auto resumed = makePredictor(spec);
            std::istringstream restore(state);
            loadPredictorState(*resumed, restore);
            SimSession resumed_session(*resumed, SimOptions(),
                                       trace.name());
            resumed_session.feed(records + half,
                                 trace.size() - half);
            const SimResult resumed_tail = resumed_session.finish();

            // Cold restart: the snapshot is lost, the second half
            // starts from reset state.
            auto cold = makePredictor(spec);
            SimSession cold_session(*cold, SimOptions(),
                                    trace.name());
            cold_session.feed(records + half, trace.size() - half);
            const SimResult cold_tail = cold_session.finish();

            const u64 resumed_total =
                head.mispredicts + resumed_tail.mispredicts;
            const u64 cold_total =
                head.mispredicts + cold_tail.mispredicts;
            // Same evaluation order as mispredictPercent(), so
            // equal counts render as equal percentages.
            const auto percent = [&](u64 mispredicts) {
                return static_cast<double>(mispredicts) /
                    static_cast<double>(
                        uninterrupted.conditionals) * 100.0;
            };

            table.row()
                .cell(trace.name())
                .percentCell(uninterrupted.mispredictPercent())
                .percentCell(percent(resumed_total))
                .percentCell(percent(cold_total))
                .cell(state.size());

            if (resumed_total != uninterrupted.mispredicts) {
                std::cout << "MISMATCH: " << spec << " on "
                          << trace.name() << ": resumed "
                          << resumed_total << " mispredicts vs "
                          << uninterrupted.mispredicts
                          << " uninterrupted\n";
                snapshot_faithful = false;
            }
        }
        std::cout << "\n" << spec << ":\n";
        emitTable(spec, table);
    }

    expectation(
        "'resumed' equals 'uninterrupted' to the last misprediction "
        "— a snapshot carries the complete predictor state. 'cold "
        "resume' pays a visible re-warm penalty, larger for the "
        "history-based designs than their table sizes alone would "
        "suggest.");

    const int status = finish();
    return snapshot_faithful ? status : 1;
}
