/**
 * @file
 * Serving-layer load generator: tens of thousands of tenants
 * through one PredictorPool.
 *
 * Each simulated tenant streams slices of one of the six suite
 * traces (per-tenant start offsets decorrelate the streams) into a
 * sharded PredictorPool. Traffic comes in two phases: a cold sweep
 * that touches every tenant once — so the per-tenant accuracy
 * export covers the whole population — followed by a traffic phase
 * whose tenant-popularity distribution is a preset:
 *
 *   hot    Zipf-skewed popularity: a small working set dominates,
 *          the LRU TenantCache mostly hits.
 *   cold   uniform popularity over all tenants: nearly every
 *          request restores a checkpointed tenant (worst case).
 *   mixed  half hot, half cold traffic, interleaved (default).
 *
 * Reported: aggregate throughput (records/s across submit+drain),
 * p50/p99 submit-to-completion request latency, checkpoint traffic
 * and — in the `--json` report — a per-tenant accuracy array plus
 * the full ServeStats export. This is the capacity-planning view
 * of the paper's aliasing question: how much serving state can
 * share one pool before checkpoint churn dominates latency.
 *
 * Extra flags on top of the common bench set:
 *   --tenants <n>    simulated tenant count (default 10000)
 *   --requests <n>   traffic-phase requests (default = tenants)
 *   --quantum <n>    records per request (default 256)
 *   --spec <spec>    predictor spec (default egskew:10:8)
 *   --shards <n>     pool worker shards (default 4)
 *   --capacity <n>   resident predictors per shard (default 256)
 *   --preset <p>     hot | cold | mixed (default mixed)
 *   --zipf <s>       hot-phase Zipf exponent (default 1.2)
 *   --spill-dir <d>  spill checkpoints under directory d
 *   --seed <n>       traffic RNG seed (default 1997)
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/predictor_pool.hh"
#include "serve/serve_stats.hh"
#include "sim/factory.hh"
#include "support/parse.hh"
#include "support/rng.hh"

namespace
{

struct LoadgenConfig
{
    bpred::u64 tenants = 10000;
    bpred::u64 requests = 0; // 0: one traffic request per tenant
    std::size_t quantum = 256;
    std::string spec = "egskew:10:8";
    unsigned shards = 4;
    std::size_t capacity = 256;
    std::string preset = "mixed";
    double zipf = 1.2;
    std::string spillDir;
    bpred::u64 seed = 1997;
};

[[noreturn]] void
loadgenUsage(const std::string &offending)
{
    std::fprintf(stderr,
                 "bench_serve_loadgen: unknown argument '%s'\n"
                 "extra flags: --tenants <n> --requests <n> "
                 "--quantum <n> --spec <spec> --shards <n> "
                 "--capacity <n> --preset hot|cold|mixed "
                 "--zipf <s> --spill-dir <dir> --seed <n>\n",
                 offending.c_str());
    std::exit(2);
}

LoadgenConfig
parseLoadgenArgs(const std::vector<std::string> &args)
{
    LoadgenConfig config;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size()) {
                loadgenUsage(arg + " (missing value)");
            }
            return args[++i];
        };
        if (arg == "--tenants") {
            config.tenants = bpred::parseU64(value(), "--tenants");
        } else if (arg == "--requests") {
            config.requests = bpred::parseU64(value(), "--requests");
        } else if (arg == "--quantum") {
            config.quantum = static_cast<std::size_t>(
                bpred::parseU64(value(), "--quantum"));
        } else if (arg == "--spec") {
            config.spec = value();
        } else if (arg == "--shards") {
            config.shards = static_cast<unsigned>(
                bpred::parseU64(value(), "--shards"));
        } else if (arg == "--capacity") {
            config.capacity = static_cast<std::size_t>(
                bpred::parseU64(value(), "--capacity"));
        } else if (arg == "--preset") {
            config.preset = value();
        } else if (arg == "--zipf") {
            config.zipf = bpred::parseDouble(value(), "--zipf");
        } else if (arg == "--spill-dir") {
            config.spillDir = value();
        } else if (arg == "--seed") {
            config.seed = bpred::parseU64(value(), "--seed");
        } else {
            loadgenUsage(arg);
        }
    }
    if (config.tenants == 0 || config.quantum == 0 ||
        config.shards == 0 || config.capacity == 0) {
        loadgenUsage("zero-valued size parameter");
    }
    if (config.preset != "hot" && config.preset != "cold" &&
        config.preset != "mixed") {
        loadgenUsage("--preset " + config.preset);
    }
    return config;
}

/** Per-tenant cursor into its base trace. */
struct TenantCursor
{
    std::size_t trace = 0;
    std::size_t at = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;
    using LoadClock = std::chrono::steady_clock;

    const LoadgenConfig config =
        parseLoadgenArgs(initWithExtraArgs(argc, argv));
    const u64 trafficRequests =
        config.requests > 0 ? config.requests : config.tenants;

    banner("Serving load generator",
           "one PredictorPool, " + std::to_string(config.tenants) +
               " tenants, '" + config.preset +
               "' traffic: throughput, request latency tails and "
               "checkpoint churn at pool scale.");

    const std::vector<Trace> &traces = suite();

    // Per-tenant stream cursors: tenant t replays trace t mod 6
    // starting at a decorrelated offset.
    std::vector<TenantCursor> cursors(config.tenants);
    for (u64 tenant = 0; tenant < config.tenants; ++tenant) {
        TenantCursor &cursor = cursors[tenant];
        cursor.trace = tenant % traces.size();
        const std::size_t size = traces[cursor.trace].size();
        cursor.at = size > config.quantum
            ? (tenant * 7919) % (size - config.quantum)
            : 0;
    }

    PredictorPool::Options options;
    options.shards = config.shards;
    options.tenantCapacity = config.capacity;
    options.spillDir = config.spillDir;
    PredictorPool pool(parseSpec(config.spec), options);

    const auto submitOne = [&](u64 tenant) {
        TenantCursor &cursor = cursors[tenant];
        const Trace &trace = traces[cursor.trace];
        if (cursor.at >= trace.size()) {
            cursor.at = 0;
        }
        PredictRequest request;
        request.tenant = tenant;
        request.records = trace.records().data() + cursor.at;
        request.count =
            std::min(config.quantum, trace.size() - cursor.at);
        cursor.at += request.count;
        pool.submit(request);
    };

    const LoadClock::time_point started = LoadClock::now();

    // Phase 1: cold sweep — every tenant exists and has an
    // accuracy row afterwards.
    for (u64 tenant = 0; tenant < config.tenants; ++tenant) {
        submitOne(tenant);
    }
    pool.drain();

    // Phase 2: preset-shaped traffic. Zipf rank r maps to tenant
    // (r * prime) mod tenants so popular tenants spread over all
    // shards instead of clustering at low ids.
    Rng rng(config.seed);
    const auto hotTenant = [&]() {
        return rng.zipf(config.tenants, config.zipf) * 7919 %
            config.tenants;
    };
    const auto coldTenant = [&]() {
        return rng.uniformInt(config.tenants);
    };
    for (u64 i = 0; i < trafficRequests; ++i) {
        const bool hot = config.preset == "hot" ||
            (config.preset == "mixed" && i % 2 == 0);
        submitOne(hot ? hotTenant() : coldTenant());
    }
    pool.drain();

    const double elapsed =
        std::chrono::duration<double>(LoadClock::now() - started)
            .count();

    const PoolCounters totals = pool.counters();
    const Histogram latency = pool.requestLatencyUs();
    const u64 p50 =
        latency.total() > 0 ? latency.percentile(0.5) : 0;
    const u64 p99 =
        latency.total() > 0 ? latency.percentile(0.99) : 0;
    const double throughput =
        elapsed > 0.0 ? double(totals.records) / elapsed : 0.0;
    const double accuracy = totals.conditionals > 0
        ? 1.0 -
            double(totals.mispredicts) / double(totals.conditionals)
        : 0.0;

    TextTable table({"tenants", "requests", "records",
                     "records/s", "p50 us", "p99 us", "evictions",
                     "restores", "accuracy"});
    table.row()
        .cell(formatCount(config.tenants))
        .cell(formatCount(totals.requests))
        .cell(formatCount(totals.records))
        .cell(formatCount(u64(throughput)))
        .cell(p50)
        .cell(p99)
        .cell(formatCount(totals.cache.evictions))
        .cell(formatCount(totals.cache.restores))
        .percentCell(100.0 * accuracy);
    emitTable("loadgen", table);

    recordReportField("serve_spec", config.spec);
    recordReportField("preset", config.preset);
    recordReportField("tenants", config.tenants);
    recordReportField("requests", totals.requests);
    recordReportField("records", totals.records);
    recordReportField("shards", u64(config.shards));
    recordReportField("capacity_per_shard", u64(config.capacity));
    recordReportField("quantum_records", u64(config.quantum));
    recordReportField("elapsed_serving_seconds", elapsed);
    recordReportField("throughput_records_per_s", throughput);
    recordReportField("latency_p50_us", p50);
    recordReportField("latency_p99_us", p99);

    // Full pool/cache/latency export, plus one accuracy row per
    // tenant — the telemetry a serving fleet would scrape.
    StatRegistry serveStats;
    exportServeStats(pool, serveStats, 0);
    emitStats("loadgen", "serve", serveStats);

    JsonValue perTenant = JsonValue::array();
    for (const TenantSummary &summary : pool.tenantSummaries()) {
        JsonValue node = JsonValue::object();
        node["tenant"] = summary.tenant;
        node["requests"] = summary.requests;
        node["conditionals"] = summary.conditionals;
        node["accuracy"] = summary.accuracy();
        perTenant.push(std::move(node));
    }
    recordReportField("tenant_accuracy", std::move(perTenant));

    expectation(
        "hot traffic should hold p99 near p50 (the popular tenants "
        "stay resident); cold traffic pays a checkpoint "
        "save+restore on nearly every request, and the gap between "
        "the two is the price of tenant-state aliasing in the "
        "cache.");

    return finish();
}
