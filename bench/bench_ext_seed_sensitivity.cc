/**
 * @file
 * Extension: statistical robustness of the headline result.
 *
 * The synthetic workloads are seeded random programs, so every
 * comparative claim should survive a change of seed. This bench
 * regenerates one benchmark with five independent seeds and
 * reports the gshare-vs-gskewed-vs-e-gskew comparison per seed,
 * plus mean and spread: the orderings the reproduction relies on
 * must hold for every seed, not just the preset one.
 */

#include "bench_common.hh"

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "support/stats.hh"
#include "workloads/presets.hh"
#include "workloads/process_mix.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Extension: seed sensitivity",
           "groff-like workload regenerated with 5 seeds: "
           "gshare-16K vs gskewed-3x4K vs e-gskew-3x4K at h=10.");

    RunningStat share_stat;
    RunningStat skew_stat;
    RunningStat egskew_stat;
    TextTable table({"seed", "gshare-16K", "gskewed-3x4K",
                     "e-gskew-3x4K", "e-gskew wins"});

    const double scale = effectiveTraceScale(defaultScale);
    for (u64 seed_index = 0; seed_index < 5; ++seed_index) {
        WorkloadParams params = ibsPreset("groff", scale);
        params.seed = params.seed * 31 + seed_index * 7919 + 1;
        const Trace trace = generateWorkload(params);

        GSharePredictor gshare(14, 10);
        SkewedPredictor gskewed(3, 12, 10, UpdatePolicy::Partial);
        SkewedPredictor egskew(makeEnhancedConfig(12, 10));

        const double share_pct =
            simulate(gshare, trace).mispredictPercent();
        const double skew_pct =
            simulate(gskewed, trace).mispredictPercent();
        const double egskew_pct =
            simulate(egskew, trace).mispredictPercent();
        share_stat.sample(share_pct);
        skew_stat.sample(skew_pct);
        egskew_stat.sample(egskew_pct);

        table.row()
            .cell(seed_index)
            .percentCell(share_pct)
            .percentCell(skew_pct)
            .percentCell(egskew_pct)
            .cell(std::string(egskew_pct <= share_pct ? "yes"
                                                      : "no"));
    }
    table.row()
        .cell(std::string("mean +/- sd"))
        .cell(formatDouble(share_stat.mean()) + " +/- " +
              formatDouble(share_stat.stddev()))
        .cell(formatDouble(skew_stat.mean()) + " +/- " +
              formatDouble(skew_stat.stddev()))
        .cell(formatDouble(egskew_stat.mean()) + " +/- " +
              formatDouble(egskew_stat.stddev()))
        .cell(std::string(""));
    emitTable("summary", table);

    expectation(
        "Seed-to-seed spread is small relative to the "
        "between-design gaps; e-gskew-3x4K beats the 16K gshare "
        "(at 25% less storage) for every seed.");
    return finish();
}
