/**
 * @file
 * Figure 3: conflicts depend on the mapping function.
 *
 * The paper's 16-entry illustration: a set of (address, history)
 * pairs that conflict under gshare do not conflict under gselect,
 * and vice versa — the observation that motivates skewing. This
 * bench quantifies it: over each benchmark trace, how often do two
 * pairs that collide under one index function also collide under
 * another?
 */

#include "bench_common.hh"

#include "aliasing/index_function.hh"
#include "predictors/history.hh"
#include "predictors/info_vector.hh"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace
{

using namespace bpred;

/**
 * Sample distinct (address, history) pairs from the trace, then
 * count pairwise collisions under each function and joint
 * collisions under function pairs.
 */
struct CollisionStats
{
    u64 gshare = 0;
    u64 gselect = 0;
    u64 skew0 = 0;
    u64 both_gshare_gselect = 0;
    u64 both_skew_banks = 0;
    u64 pairs = 0;
};

CollisionStats
measure(const Trace &trace, unsigned index_bits,
        unsigned history_bits, std::size_t max_vectors)
{
    // Collect distinct info vectors.
    std::unordered_set<u64> seen;
    std::vector<std::pair<Addr, History>> vectors;
    GlobalHistory history;
    for (const BranchRecord &record : trace) {
        if (!record.conditional) {
            history.shiftIn(true);
            continue;
        }
        const u64 key =
            packInfoVector(record.pc, history.raw(), history_bits);
        if (seen.insert(key).second &&
            vectors.size() < max_vectors) {
            vectors.emplace_back(record.pc, history.raw());
        }
        history.shiftIn(record.taken);
        if (vectors.size() >= max_vectors) {
            break;
        }
    }

    const IndexFunction gshare{IndexKind::GShare, index_bits,
                               history_bits};
    const IndexFunction gselect{IndexKind::GSelect, index_bits,
                                history_bits};
    const IndexFunction skew0{IndexKind::Skew0, index_bits,
                              history_bits};
    const IndexFunction skew1{IndexKind::Skew1, index_bits,
                              history_bits};

    // Bucket by index per function; collisions counted pairwise
    // via bucket sizes.
    CollisionStats stats;
    std::unordered_map<u64, std::vector<std::size_t>> by_gshare;
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        by_gshare[gshare(vectors[i].first, vectors[i].second)]
            .push_back(i);
    }
    for (const auto &[index, members] : by_gshare) {
        (void)index;
        const u64 k = members.size();
        stats.gshare += k * (k - 1) / 2;
        // Of the pairs colliding in gshare, how many also collide
        // in gselect?
        for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                const auto &[pa, ha] = vectors[members[a]];
                const auto &[pb, hb] = vectors[members[b]];
                if (gselect(pa, ha) == gselect(pb, hb)) {
                    ++stats.both_gshare_gselect;
                }
            }
        }
    }

    std::unordered_map<u64, std::vector<std::size_t>> by_skew0;
    std::unordered_map<u64, u64> bucket;
    for (const auto &[pc, h] : vectors) {
        ++bucket[gselect(pc, h)];
    }
    for (const auto &[index, k] : bucket) {
        (void)index;
        stats.gselect += k * (k - 1) / 2;
    }

    for (std::size_t i = 0; i < vectors.size(); ++i) {
        by_skew0[skew0(vectors[i].first, vectors[i].second)]
            .push_back(i);
    }
    for (const auto &[index, members] : by_skew0) {
        (void)index;
        const u64 k = members.size();
        stats.skew0 += k * (k - 1) / 2;
        for (std::size_t a = 0; a < members.size(); ++a) {
            for (std::size_t b = a + 1; b < members.size(); ++b) {
                const auto &[pa, ha] = vectors[members[a]];
                const auto &[pb, hb] = vectors[members[b]];
                if (skew1(pa, ha) == skew1(pb, hb)) {
                    ++stats.both_skew_banks;
                }
            }
        }
    }

    stats.pairs = static_cast<u64>(vectors.size());
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 3",
           "Conflicts depend on the mapping function: pairs that "
           "collide under one index rarely collide under another "
           "— and almost never under two skew banks.");

    TextTable table({"benchmark", "vectors", "gshare coll",
                     "gselect coll", "skew-f0 coll",
                     "gshare&gselect", "f0&f1"});
    for (const Trace &trace : suite()) {
        const CollisionStats stats = measure(trace, 10, 8, 4000);
        table.row()
            .cell(trace.name())
            .cell(stats.pairs)
            .cell(stats.gshare)
            .cell(stats.gselect)
            .cell(stats.skew0)
            .cell(stats.both_gshare_gselect)
            .cell(stats.both_skew_banks);
    }
    emitTable("summary", table);

    expectation(
        "Each function alone has thousands of colliding pairs "
        "(4000 vectors into 1K entries), but the joint-collision "
        "columns are dramatically smaller — and the skew-bank "
        "pair (f0&f1) column is the smallest, by design of the "
        "function family.");
    return finish();
}
