/**
 * @file
 * Figure 7: misprediction percentage of 3x4K-entry gskewed vs
 * 16K-entry gshare while varying the global history length.
 *
 * gskewed uses 25% less storage (24 Kbit vs 32 Kbit of counters)
 * yet the paper finds it outperforms gshare on every benchmark
 * except real_gcc.
 *
 * All (trace x history x design) cells run on the SweepRunner
 * thread pool; results come back in submission order, so the
 * tables are identical to the serial run at any `--threads`
 * setting.
 */

#include "bench_common.hh"

#include <memory>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figure 7",
           "Mispredict % vs history length: gskewed-3x4K vs "
           "gshare-16K (gskewed uses 25% less storage).");

    const std::vector<unsigned> historyLengths = {0, 2,  4,  6,
                                                  8, 10, 12, 14};

    SweepRunner runner(sweepThreads(), blockRecords());
    for (const Trace &trace : suite()) {
        for (const unsigned history : historyLengths) {
            runner.enqueue(
                [history] {
                    return std::make_unique<GSharePredictor>(
                        14, history);
                },
                trace);
            runner.enqueue(
                [history] {
                    return std::make_unique<SkewedPredictor>(
                        3, 12, history, UpdatePolicy::Partial);
                },
                trace);
        }
    }
    const std::vector<SimResult> results = runner.run();

    std::size_t cell = 0;
    for (const Trace &trace : suite()) {
        std::cout << "\n[" << trace.name() << "]\n";
        TextTable table({"history", "gshare-16K", "gskewed-3x4K",
                         "winner"});
        for (const unsigned history : historyLengths) {
            const double share_pct =
                results[cell].mispredictPercent();
            const double skew_pct =
                results[cell + 1].mispredictPercent();
            cell += 2;
            table.row()
                .cell(u64(history))
                .percentCell(share_pct)
                .percentCell(skew_pct)
                .cell(std::string(skew_pct <= share_pct
                                      ? "gskewed"
                                      : "gshare"));
        }
        emitTable(trace.name(), table);
    }

    expectation(
        "Despite 25% less storage, gskewed wins at most history "
        "lengths on most benchmarks (the paper excepts real_gcc, "
        "whose large working set stresses capacity).");
    return finish();
}
