/**
 * @file
 * Table 1: conditional branch counts of the benchmark suite.
 *
 * The paper reports the dynamic and static conditional branch
 * counts of the six IBS-Ultrix traces. Our synthetic stand-ins are
 * generated to the same static site budgets; dynamic length is the
 * library default (scaled).
 */

#include "bench_common.hh"

namespace
{

struct PaperRow
{
    const char *name;
    bpred::u64 dynamic;
    bpred::u64 static_count;
};

constexpr PaperRow paperTable1[] = {
    {"groff", 11568181, 5634},   {"gs", 14288742, 10935},
    {"mpeg_play", 8109029, 4752}, {"nroff", 21368201, 4480},
    {"real_gcc", 13940672, 16716}, {"verilog", 5692823, 3918},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Table 1",
           "Conditional branch counts (dynamic / static) per "
           "benchmark.");

    TextTable table({"benchmark", "dynamic", "static",
                     "paper dynamic", "paper static"});
    std::size_t row = 0;
    for (const Trace &trace : suite()) {
        const TraceStats stats = computeTraceStats(trace);
        table.row()
            .cell(trace.name())
            .cell(formatCount(stats.dynamicConditional))
            .cell(formatCount(stats.staticConditional))
            .cell(formatCount(paperTable1[row].dynamic))
            .cell(formatCount(paperTable1[row].static_count));
        ++row;
    }
    emitTable("summary", table);

    expectation(
        "Static counts track Table 1 (real_gcc largest, verilog "
        "smallest); dynamic counts are the configured synthetic "
        "trace length, not the IBS capture length.");
    return finish();
}
