/**
 * @file
 * Figures 9 and 10: the analytical destructive-aliasing curves
 * Pdm(p) = p/2 and Psk(p) = (3/4)p^2(1-p) + (1/2)p^3 at the
 * worst-case bias b = 0.5, over the full range (Fig. 9) and the
 * small-p zoom (Fig. 10), plus the N/10 crossover observation.
 */

#include "bench_common.hh"

#include "model/formulas.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;
    using namespace bpred::bench;

    init(argc, argv);

    banner("Figures 9-10",
           "Analytical destructive-aliasing probability: 1-bank "
           "linear vs 3-bank cubic (b = 0.5).");

    std::cout << "\nFull range (Figure 9):\n";
    TextTable full({"p", "Pdm = p/2", "Psk (3-bank)",
                    "Psk (5-bank)"});
    for (int i = 0; i <= 10; ++i) {
        const double p = i / 10.0;
        full.row()
            .cell(p, 2)
            .cell(destructiveProbabilityDirectMapped(p, 0.5), 4)
            .cell(destructiveProbabilitySkewed3(p, 0.5), 4)
            .cell(destructiveProbabilitySkewed(5, p, 0.5), 4);
    }
    emitTable("summary", full);

    std::cout << "\nSmall-p zoom (Figure 10):\n";
    TextTable zoom({"p", "Pdm", "Psk (3-bank)", "Psk/Pdm"});
    for (const double p :
         {0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}) {
        const double dm = destructiveProbabilityDirectMapped(p, 0.5);
        const double sk = destructiveProbabilitySkewed3(p, 0.5);
        zoom.row().cell(p, 3).cell(dm, 6).cell(sk, 6).cell(
            sk / dm, 4);
    }
    emitTable("summary", zoom);

    std::cout << "\nCrossover distance D* where Psk(3x(N/3)) = "
                 "Pdm(N) (paper: D* ~ N/10):\n";
    TextTable crossover({"N (DM entries)", "D*", "N / D*"});
    for (unsigned bits = 10; bits <= 18; bits += 2) {
        const u64 n = 3 * ((u64(1) << bits) / 3);
        const u64 d_star = skewedCrossoverDistance(n);
        crossover.row().cell(formatEntries(u64(1) << bits))
            .cell(d_star)
            .cell(static_cast<double>(n) /
                      static_cast<double>(d_star),
                  1);
    }
    emitTable("summary", crossover);

    expectation(
        "Psk << Pdm for small p (cubic vs linear), crossing above "
        "Pdm as p -> 1; the equal-storage crossover lands near "
        "D = N/10, the paper's rule of thumb.");
    return finish();
}
