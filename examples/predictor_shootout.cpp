/**
 * @file
 * Shoot-out: run any set of predictor specs over the benchmark
 * suite and rank them.
 *
 * Usage: predictor_shootout [scale] [spec ...]
 *
 * With no specs, a representative field competes: bimodal, gshare,
 * gselect, PAg, hybrid, gskewed and e-gskew at comparable storage.
 *
 * Example:
 *   predictor_shootout 0.1 gshare:14:12 gskewed:3:12:12:partial
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;

    double scale = 0.1;
    std::vector<std::string> specs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i == 1 && arg.find(':') == std::string::npos) {
            scale = parseDouble(argv[i], "scale");
            continue;
        }
        specs.push_back(arg);
    }
    if (specs.empty()) {
        specs = {"bimodal:14",          "gshare:14:10",
                 "gselect:14:10",       "pag:12:10",
                 "hybrid:13:10",        "agree:14:10:12",
                 "bimode:13:10:12",     "gskewed:3:12:10:partial",
                 "egskew:12:10",        "egskewsh:12:10"};
    }

    try {
        std::cout << "Benchmark suite at scale " << scale << "\n";
        const std::vector<Trace> suite = ibsSuite(scale);

        TextTable table([&] {
            std::vector<std::string> headers = {"predictor",
                                                "Kbit"};
            for (const Trace &trace : suite) {
                headers.push_back(trace.name());
            }
            headers.push_back("mean");
            return headers;
        }());

        std::multimap<double, std::string> ranking;
        for (const std::string &spec : specs) {
            table.row();
            auto probe = makePredictor(spec);
            table.cell(probe->name()).cell(probe->storageBits() /
                                           1024);
            double sum = 0.0;
            for (const Trace &trace : suite) {
                auto predictor = makePredictor(spec);
                const SimResult result =
                    simulate(*predictor, trace);
                table.percentCell(result.mispredictPercent());
                sum += result.mispredictPercent();
            }
            const double mean =
                sum / static_cast<double>(suite.size());
            table.percentCell(mean);
            ranking.emplace(mean, probe->name());
        }
        table.print(std::cout);

        std::cout << "\nRanking (mean mispredict, best first):\n";
        int place = 1;
        for (const auto &[mean, name] : ranking) {
            std::cout << "  " << place++ << ". " << name << "  ("
                      << formatDouble(mean) << " %)\n";
        }
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n"
                  << predictorSpecHelp() << "\n";
        return 1;
    }
}
