/**
 * @file
 * Design-space explorer: sweep skewed-predictor configurations on
 * one benchmark and print a Pareto view of storage vs accuracy.
 *
 * This is the chip-designer scenario from the paper's conclusion:
 * "die-area constraints may not permit increasing a 1-bank table
 * from 16K to 32K, but a skewed organization offers a middle
 * point". The explorer enumerates bank counts, bank sizes, history
 * lengths and update policies, and flags the configurations on the
 * storage/accuracy Pareto frontier.
 *
 * Usage: design_explorer [benchmark] [scale]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;

    const std::string benchmark = argc > 1 ? argv[1] : "gs";
    const double scale =
        argc > 2 ? bpred::parseDouble(argv[2], "scale") : 0.1;

    try {
        const Trace trace = makeIbsTrace(benchmark, scale);

        struct Point
        {
            std::string name;
            u64 storage_bits;
            double mispredict;
            bool pareto = false;
        };
        std::vector<Point> points;

        // gshare reference line.
        for (unsigned bits : {11u, 12u, 13u, 14u, 15u}) {
            GSharePredictor predictor(bits, 10);
            const SimResult result = simulate(predictor, trace);
            points.push_back({result.predictorName,
                              result.storageBits,
                              result.mispredictRatio()});
        }

        // Skewed design space.
        for (unsigned banks : {3u, 5u}) {
            for (unsigned bank_bits : {9u, 10u, 11u, 12u}) {
                for (UpdatePolicy policy :
                     {UpdatePolicy::Partial, UpdatePolicy::Total}) {
                    SkewedPredictor predictor(banks, bank_bits, 10,
                                              policy);
                    const SimResult result =
                        simulate(predictor, trace);
                    points.push_back({result.predictorName,
                                      result.storageBits,
                                      result.mispredictRatio()});
                }
            }
        }

        // e-gskew.
        for (unsigned bank_bits : {10u, 11u, 12u}) {
            SkewedPredictor predictor(
                makeEnhancedConfig(bank_bits, 10));
            const SimResult result = simulate(predictor, trace);
            points.push_back({result.predictorName,
                              result.storageBits,
                              result.mispredictRatio()});
        }

        // Mark the Pareto frontier (min storage, min mispredict).
        for (Point &candidate : points) {
            candidate.pareto = std::none_of(
                points.begin(), points.end(),
                [&](const Point &other) {
                    return (other.storage_bits <=
                                candidate.storage_bits &&
                            other.mispredict <
                                candidate.mispredict) ||
                        (other.storage_bits <
                             candidate.storage_bits &&
                         other.mispredict <=
                             candidate.mispredict);
                });
        }

        std::sort(points.begin(), points.end(),
                  [](const Point &a, const Point &b) {
                      return a.storage_bits < b.storage_bits;
                  });

        TextTable table(
            {"config", "Kbit", "mispredict", "pareto"});
        for (const Point &point : points) {
            table.row()
                .cell(point.name)
                .cell(point.storage_bits / 1024)
                .percentCell(point.mispredict * 100.0)
                .cell(std::string(point.pareto ? "*" : ""));
        }
        std::cout << "Design space on '" << benchmark
                  << "' (scale " << scale << ")\n";
        table.print(std::cout);
        std::cout << "\n'*' marks storage/accuracy Pareto-optimal "
                     "designs.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
