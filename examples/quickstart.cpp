/**
 * @file
 * Quickstart: build a skewed branch predictor, run it on a
 * synthetic workload, and compare it against gshare.
 *
 * This is the 60-second tour of the library's public API:
 *
 *   1. generate a trace (workloads),
 *   2. construct predictors (core / predictors / sim factory),
 *   3. simulate (sim),
 *   4. read the numbers (support).
 *
 * Usage: quickstart [benchmark] [scale]
 *   benchmark: one of groff gs mpeg_play nroff real_gcc verilog
 *              (default groff)
 *   scale:     trace-length multiplier (default 0.1 = 200k branches)
 */

#include <cstdlib>
#include <iostream>

#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;

    const std::string benchmark = argc > 1 ? argv[1] : "groff";
    const double scale =
        argc > 2 ? bpred::parseDouble(argv[2], "scale") : 0.1;

    try {
        std::cout << "Generating IBS-like trace '" << benchmark
                  << "' (scale " << scale << ")...\n";
        const Trace trace = makeIbsTrace(benchmark, scale);
        const TraceStats stats = computeTraceStats(trace);
        std::cout << "  " << formatCount(stats.dynamicConditional)
                  << " conditional branches over "
                  << formatCount(stats.staticConditional)
                  << " static sites\n";

        // A 16K-entry gshare vs a 3x4K gskewed: the paper's
        // headline comparison — gskewed with 25% less storage.
        GSharePredictor gshare(14, 10);
        SkewedPredictor gskewed(3, 12, 10, UpdatePolicy::Partial);
        SkewedPredictor egskew(makeEnhancedConfig(12, 10));

        TextTable table({"predictor", "storage (Kbit)",
                         "mispredict"});
        for (Predictor *predictor :
             {static_cast<Predictor *>(&gshare),
              static_cast<Predictor *>(&gskewed),
              static_cast<Predictor *>(&egskew)}) {
            const SimResult result = simulate(*predictor, trace);
            table.row()
                .cell(result.predictorName)
                .cell(result.storageBits / 1024)
                .percentCell(result.mispredictPercent());
        }
        table.print(std::cout);

        std::cout << "\ngskewed matches or beats the bigger gshare "
                     "table by removing conflict aliasing.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
