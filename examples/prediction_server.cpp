/**
 * @file
 * Multi-tenant prediction serving on one predictor instance.
 *
 * Three traces ("tenants") share a single hardware predictor, the
 * way co-scheduled processes share one branch predictor. The server
 * round-robins between them in fixed-size quanta; on every context
 * switch it checkpoints the outgoing tenant's predictor state to an
 * in-memory buffer (savePredictorState) and restores the incoming
 * tenant's (loadPredictorState). Each tenant's streaming SimSession
 * keeps its own scores across suspensions.
 *
 * Because snapshots carry the complete predictor state, every
 * tenant must end with exactly the misprediction count it would get
 * running alone on a private predictor — the program verifies this
 * against a standalone batch run per tenant and exits nonzero on
 * any difference. Dropping the save/restore pair turns this into
 * the aliasing-and-history-pollution experiment of the paper's
 * multiprogramming sections.
 *
 * Usage: prediction_server [scale] [quantum] [spec]
 *   scale:   trace-length multiplier (default 0.1 = 200k branches)
 *   quantum: records served per scheduling slice (default 20000)
 *   spec:    shared predictor spec (default egskew:12:11)
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/session.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

namespace
{

struct Tenant
{
    bpred::Trace trace;
    std::unique_ptr<bpred::SimSession> session;

    /** Serialized predictor state while the tenant is suspended. */
    std::string checkpoint;

    /** Next record to serve. */
    std::size_t at = 0;

    /** Context switches into this tenant. */
    unsigned slices = 0;

    bool done() const { return at >= trace.size(); }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;

    const double scale =
        argc > 1 ? bpred::parseDouble(argv[1], "scale") : 0.1;
    const std::size_t quantum =
        argc > 2
        ? static_cast<std::size_t>(parseU64(argv[2], "quantum"))
        : 20000;
    const std::string spec = argc > 3 ? argv[3] : "egskew:12:11";

    if (scale <= 0.0 || quantum == 0) {
        std::cerr << "usage: prediction_server [scale] [quantum] "
                     "[spec]\n";
        return 2;
    }

    try {
        auto predictor = makePredictor(spec);
        if (!predictor->supportsSnapshot()) {
            std::cerr << "error: '" << spec
                      << "' does not support snapshots; pick a "
                         "snapshot-capable scheme (e.g. gshare, "
                         "egskew, bimodal)\n";
            return 2;
        }

        std::cout << "Serving 3 tenants on one '"
                  << predictor->name() << "' (quantum " << quantum
                  << " records)\n";

        std::vector<Tenant> tenants;
        for (const char *benchmark : {"groff", "gs", "nroff"}) {
            Tenant tenant;
            tenant.trace = makeIbsTrace(benchmark, scale);
            tenants.push_back(std::move(tenant));
        }
        // Sessions bind to the shared predictor after the tenants
        // vector stops reallocating.
        for (Tenant &tenant : tenants) {
            tenant.session = std::make_unique<SimSession>(
                *predictor, SimOptions(), tenant.trace.name());
        }

        // Round-robin scheduler: restore, serve one quantum,
        // checkpoint, move on.
        unsigned switches = 0;
        for (bool any_ran = true; any_ran;) {
            any_ran = false;
            for (Tenant &tenant : tenants) {
                if (tenant.done()) {
                    continue;
                }
                if (tenant.slices == 0) {
                    // First slice: a tenant starts cold.
                    predictor->reset();
                } else {
                    std::istringstream in(tenant.checkpoint);
                    loadPredictorState(*predictor, in);
                }
                ++tenant.slices;
                ++switches;

                const std::size_t n = std::min(
                    quantum, tenant.trace.size() - tenant.at);
                tenant.session->feed(
                    tenant.trace.records().data() + tenant.at, n);
                tenant.at += n;

                std::ostringstream out;
                savePredictorState(*predictor, out);
                tenant.checkpoint = out.str();
                any_ran = true;
            }
        }

        // Every tenant must match a standalone run on a private
        // predictor bit for bit.
        bool isolated = true;
        TextTable table({"tenant", "records", "slices", "served",
                         "standalone", "checkpoint bytes"});
        for (Tenant &tenant : tenants) {
            const SimResult served = tenant.session->finish();

            auto reference = makePredictor(spec);
            const SimResult standalone =
                simulate(*reference, tenant.trace);

            table.row()
                .cell(tenant.trace.name())
                .cell(formatCount(tenant.trace.size()))
                .cell(static_cast<u64>(tenant.slices))
                .percentCell(served.mispredictPercent())
                .percentCell(standalone.mispredictPercent())
                .cell(tenant.checkpoint.size());

            if (served.mispredicts != standalone.mispredicts ||
                served.conditionals != standalone.conditionals) {
                std::cout << "ISOLATION FAILURE: "
                          << tenant.trace.name() << " served "
                          << served.mispredicts << "/"
                          << served.conditionals << " vs standalone "
                          << standalone.mispredicts << "/"
                          << standalone.conditionals << "\n";
                isolated = false;
            }
        }
        table.print(std::cout);

        if (!isolated) {
            return 1;
        }
        std::cout << "\n" << switches
                  << " context switches; every tenant matched its "
                     "standalone run exactly — checkpoints carry "
                     "the complete predictor state.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
