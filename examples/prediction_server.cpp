/**
 * @file
 * Multi-tenant prediction serving over the src/serve pool API.
 *
 * Each tenant is an IBS-like trace served through a PredictorPool:
 * sharded worker threads, batched PredictRequests resolved by the
 * replayBlock() kernel, and an LRU TenantCache that checkpoints
 * cold tenants to BPS1 buffers and restores them on demand. The
 * default capacity is deliberately scarce, so tenants thrash
 * through at least one evict/restore cycle per scheduling round —
 * the serving-layer descendant of the original round-robin
 * context-switch experiment.
 *
 * Because snapshots carry the complete predictor state, every
 * tenant must end bit-identical to a standalone run on a private
 * predictor: same misprediction counts AND the same BPS1 snapshot
 * bytes. The program verifies both and exits nonzero on any
 * difference, which makes it CI's end-to-end gate on the serve
 * stack.
 *
 * Observability: with --metrics-out the server rewrites a JSON
 * snapshot after every scheduling round — the ServeStats export
 * (pool/cache/latency plus per-tenant request and accuracy rows)
 * wrapped with round progress. Each snapshot is a complete JSON
 * document, so `watch python3 -m json.tool <file>` is a live
 * dashboard.
 *
 * Usage: prediction_server [options] [scale [quantum [spec [metrics_out]]]]
 *   --scale X        trace-length multiplier (default 0.1)
 *   --quantum N      records per request (default 20000)
 *   --spec S         predictor spec (default egskew:12:11)
 *   --tenants N      tenant count, cycling the IBS suite (default 3)
 *   --rounds N       stop after N scheduling rounds (default: run
 *                    every stream to completion)
 *   --shards N       pool worker shards (default 2)
 *   --capacity N     resident predictors per shard (default sized
 *                    to force checkpoint churn)
 *   --spill-dir D    spill evicted checkpoints under directory D
 *   --metrics-out F  rewrite a JSON metrics snapshot every round
 *
 * The positional form ([scale] [quantum] [spec] [metrics_out]) is
 * kept as a fallback so existing smoke invocations keep working:
 *   prediction_server 0.02 5000 egskew:10:8
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/predictor_pool.hh"
#include "serve/serve_stats.hh"
#include "sim/driver.hh"
#include "sim/factory.hh"
#include "support/json.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

namespace
{

struct ServerConfig
{
    double scale = 0.1;
    std::size_t quantum = 20000;
    std::string spec = "egskew:12:11";
    std::string metricsPath;
    bpred::u64 tenants = 3;
    bpred::u64 rounds = 0; // 0: serve every stream to completion
    unsigned shards = 2;
    std::size_t capacity = 0; // 0: derive a churn-forcing default
    std::string spillDir;
};

void
printUsage(std::ostream &os)
{
    os << "usage: prediction_server [options] "
          "[scale [quantum [spec [metrics_out]]]]\n"
          "  --scale X        trace-length multiplier (default 0.1)\n"
          "  --quantum N      records per request (default 20000)\n"
          "  --spec S         predictor spec (default egskew:12:11)\n"
          "  --tenants N      tenant count over the IBS suite "
          "(default 3)\n"
          "  --rounds N       stop after N scheduling rounds\n"
          "  --shards N       pool worker shards (default 2)\n"
          "  --capacity N     resident predictors per shard\n"
          "  --spill-dir D    spill checkpoints under directory D\n"
          "  --metrics-out F  rewrite JSON metrics every round\n";
}

/**
 * Flag-style parsing with the historic positional form as a
 * fallback: bare tokens fill scale, quantum, spec, metrics_out in
 * order.
 */
bool
parseArgs(int argc, char **argv, ServerConfig &config)
{
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "error: " << what
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(std::cout);
            std::exit(0);
        } else if (arg == "--scale") {
            config.scale =
                bpred::parseDouble(value("--scale"), "--scale");
        } else if (arg == "--quantum") {
            config.quantum = static_cast<std::size_t>(
                bpred::parseU64(value("--quantum"), "--quantum"));
        } else if (arg == "--spec") {
            config.spec = value("--spec");
        } else if (arg == "--tenants") {
            config.tenants =
                bpred::parseU64(value("--tenants"), "--tenants");
        } else if (arg == "--rounds") {
            config.rounds =
                bpred::parseU64(value("--rounds"), "--rounds");
        } else if (arg == "--shards") {
            config.shards = static_cast<unsigned>(
                bpred::parseU64(value("--shards"), "--shards"));
        } else if (arg == "--capacity") {
            config.capacity = static_cast<std::size_t>(
                bpred::parseU64(value("--capacity"), "--capacity"));
        } else if (arg == "--spill-dir") {
            config.spillDir = value("--spill-dir");
        } else if (arg == "--metrics-out") {
            config.metricsPath = value("--metrics-out");
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "error: unknown option '" << arg << "'\n";
            return false;
        } else {
            switch (positional++) {
              case 0:
                config.scale = bpred::parseDouble(arg, "scale");
                break;
              case 1:
                config.quantum = static_cast<std::size_t>(
                    bpred::parseU64(arg, "quantum"));
                break;
              case 2:
                config.spec = arg;
                break;
              case 3:
                config.metricsPath = arg;
                break;
              default:
                std::cerr << "error: too many positional "
                             "arguments\n";
                return false;
            }
        }
    }
    if (config.scale <= 0.0 || config.quantum == 0 ||
        config.tenants == 0 || config.shards == 0) {
        return false;
    }
    return true;
}

struct TenantStream
{
    bpred::u64 id = 0;

    /** Index into the shared benchmark trace list. */
    std::size_t benchmark = 0;

    /** Next record to serve. */
    std::size_t at = 0;
};

/** Rewrite the per-round metrics snapshot (a complete document). */
void
writeMetricsSnapshot(const std::string &path,
                     const bpred::PredictorPool &pool,
                     bpred::u64 round, bpred::u64 roundsServed,
                     const std::vector<TenantStream> &streams,
                     const std::vector<bpred::Trace> &traces)
{
    using bpred::JsonValue;
    JsonValue document = JsonValue::object();
    document["round"] = round;
    document["rounds_served"] = roundsServed;
    document["serve"] = serveStatsToJson(pool, streams.size());
    JsonValue &progress = document["tenants"];
    progress = JsonValue::object();
    for (const TenantStream &stream : streams) {
        JsonValue node = JsonValue::object();
        node["benchmark"] = traces[stream.benchmark].name();
        node["records_served"] = bpred::u64(stream.at);
        node["records_total"] =
            bpred::u64(traces[stream.benchmark].size());
        const bpred::TenantSummary summary =
            pool.tenantSummary(stream.id);
        node["requests"] = summary.requests;
        node["accuracy"] = summary.accuracy();
        progress["tenant_" + std::to_string(stream.id)] =
            std::move(node);
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "warning: cannot write metrics snapshot to '"
                  << path << "'\n";
        return;
    }
    document.write(out, 2);
    out << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;

    ServerConfig config;
    if (!parseArgs(argc, argv, config)) {
        printUsage(std::cerr);
        return 2;
    }

    try {
        const PredictorSpec spec = parseSpec(config.spec);

        // Tenant t serves benchmark t mod |suite|; the traces are
        // generated once and shared (each tenant still gets its own
        // predictor, which is the whole point).
        const std::vector<std::string> &names = ibsBenchmarkNames();
        const std::size_t distinct = std::min<std::size_t>(
            config.tenants, names.size());
        std::vector<Trace> traces;
        for (std::size_t i = 0; i < distinct; ++i) {
            traces.push_back(makeIbsTrace(names[i], config.scale));
        }
        std::vector<TenantStream> streams;
        for (u64 tenant = 0; tenant < config.tenants; ++tenant) {
            streams.push_back(
                {tenant, std::size_t(tenant) % distinct, 0});
        }

        PredictorPool::Options options;
        options.shards = config.shards;
        // Default capacity: about half the tenants a shard serves,
        // so every round forces checkpoint churn (the serving
        // analogue of a context switch per quantum).
        const std::size_t perShard =
            (config.tenants + config.shards - 1) / config.shards;
        options.tenantCapacity = config.capacity > 0
            ? config.capacity
            : std::max<std::size_t>(1, perShard / 2);
        options.spillDir = config.spillDir;
        PredictorPool pool(spec, options);

        std::cout << "Serving " << config.tenants
                  << " tenants over '" << spec.toString() << "' ("
                  << config.shards << " shard"
                  << (config.shards == 1 ? "" : "s") << ", capacity "
                  << options.tenantCapacity
                  << " residents/shard, quantum " << config.quantum
                  << " records)\n";

        // Round-robin scheduler: every round each unfinished tenant
        // submits one quantum; drain() is the round barrier so the
        // metrics snapshot below reads quiesced totals.
        u64 round = 0;
        for (bool any_ran = true; any_ran; ) {
            if (config.rounds > 0 && round == config.rounds) {
                break;
            }
            any_ran = false;
            for (TenantStream &stream : streams) {
                const Trace &trace = traces[stream.benchmark];
                if (stream.at >= trace.size()) {
                    continue;
                }
                PredictRequest request;
                request.tenant = stream.id;
                request.records =
                    trace.records().data() + stream.at;
                request.count = std::min(
                    config.quantum, trace.size() - stream.at);
                pool.submit(request);
                stream.at += request.count;
                any_ran = true;
            }
            if (!any_ran) {
                break;
            }
            pool.drain();
            ++round;
            if (!config.metricsPath.empty()) {
                writeMetricsSnapshot(config.metricsPath, pool,
                                     round, round, streams, traces);
            }
        }
        pool.drain();

        // Every tenant must match a standalone run on a private
        // predictor bit for bit: identical scores AND identical
        // final snapshot bytes. References are computed once per
        // distinct benchmark slice actually served.
        bool isolated = true;
        TextTable table({"tenant", "benchmark", "records", "requests",
                         "served", "standalone", "snapshot"});
        for (const TenantStream &stream : streams) {
            const Trace &trace = traces[stream.benchmark];

            auto reference = makePredictor(spec.toString());
            Trace slice(trace.name());
            slice.append(trace.records().data(), stream.at);
            const SimResult standalone = simulate(*reference, slice);
            std::ostringstream expected;
            savePredictorState(*reference, expected);

            const TenantSummary served =
                pool.tenantSummary(stream.id);
            const bool bytesMatch =
                pool.exportTenant(stream.id) == expected.str();
            const bool scoresMatch =
                served.mispredicts == standalone.mispredicts &&
                served.conditionals == standalone.conditionals;

            const double servedPct = served.conditionals == 0
                ? 0.0
                : 100.0 * double(served.mispredicts) /
                    double(served.conditionals);
            table.row()
                .cell("tenant_" + std::to_string(stream.id))
                .cell(trace.name())
                .cell(formatCount(stream.at))
                .cell(served.requests)
                .percentCell(servedPct)
                .percentCell(standalone.mispredictPercent())
                .cell(bytesMatch ? "match" : "DIFF");

            if (!scoresMatch || !bytesMatch) {
                std::cout << "ISOLATION FAILURE: tenant "
                          << stream.id << " served "
                          << served.mispredicts << "/"
                          << served.conditionals << " vs standalone "
                          << standalone.mispredicts << "/"
                          << standalone.conditionals
                          << (bytesMatch ? ""
                                         : " (snapshot bytes differ)")
                          << "\n";
                isolated = false;
            }
        }
        table.print(std::cout);

        if (!isolated) {
            return 1;
        }
        const PoolCounters totals = pool.counters();
        std::cout << "\n" << totals.requests << " requests, "
                  << totals.cache.evictions << " evictions, "
                  << totals.cache.restores
                  << " restores; every tenant matched its "
                     "standalone run exactly — checkpoints carry "
                     "the complete predictor state.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
