/**
 * @file
 * Multi-tenant prediction serving on one predictor instance.
 *
 * Three traces ("tenants") share a single hardware predictor, the
 * way co-scheduled processes share one branch predictor. The server
 * round-robins between them in fixed-size quanta; on every context
 * switch it checkpoints the outgoing tenant's predictor state to an
 * in-memory buffer (savePredictorState) and restores the incoming
 * tenant's (loadPredictorState). Each tenant's streaming SimSession
 * keeps its own scores across suspensions.
 *
 * Because snapshots carry the complete predictor state, every
 * tenant must end with exactly the misprediction count it would get
 * running alone on a private predictor — the program verifies this
 * against a standalone batch run per tenant and exits nonzero on
 * any difference. Dropping the save/restore pair turns this into
 * the aliasing-and-history-pollution experiment of the paper's
 * multiprogramming sections.
 *
 * Observability: with a fourth argument the server writes a JSON
 * metrics snapshot after every full scheduling round (and once at
 * the end) — per tenant: request/record counts, live accuracy, and
 * checkpoint save/restore latency p50/p99 from the Histogram in
 * support/stats.hh, plus the tenant session's own feed-phase
 * metrics (SimOptions::metrics). The file is rewritten in place, so
 * `watch python3 -m json.tool <file>` is a live dashboard.
 *
 * Usage: prediction_server [scale] [quantum] [spec] [metrics_out]
 *   scale:       trace-length multiplier (default 0.1 = 200k branches)
 *   quantum:     records served per scheduling slice (default 20000)
 *   spec:        shared predictor spec (default egskew:12:11)
 *   metrics_out: periodic JSON metrics snapshot path (default off)
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/session.hh"
#include "support/json.hh"
#include "support/parse.hh"
#include "support/stat_registry.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

namespace
{

using ServerClock = std::chrono::steady_clock;

struct Tenant
{
    bpred::Trace trace;
    std::unique_ptr<bpred::SimSession> session;

    /** Serialized predictor state while the tenant is suspended. */
    std::string checkpoint;

    /** Per-tenant server + session metrics (SimOptions::metrics). */
    bpred::StatRegistry metrics;

    /** Next record to serve. */
    std::size_t at = 0;

    /** Context switches into this tenant. */
    unsigned slices = 0;

    bool done() const { return at >= trace.size(); }
};

/** Checkpoint latency in whole microseconds for the histograms. */
bpred::u64
elapsedUs(ServerClock::time_point start)
{
    return static_cast<bpred::u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            ServerClock::now() - start)
            .count());
}

/** p50/p99/count summary of a latency histogram (µs keys). */
bpred::JsonValue
latencySummary(const bpred::Histogram &latency)
{
    bpred::JsonValue node = bpred::JsonValue::object();
    node["count"] = latency.total();
    node["p50_us"] =
        latency.total() > 0 ? latency.percentile(0.5) : bpred::u64(0);
    node["p99_us"] =
        latency.total() > 0 ? latency.percentile(0.99) : bpred::u64(0);
    return node;
}

/**
 * Write one metrics snapshot covering every tenant. Writes to a
 * temp-free single file (truncate + rewrite): each snapshot is a
 * complete JSON document, so external tooling never sees a partial
 * tail longer than one write.
 */
void
writeMetricsSnapshot(const std::string &path, unsigned snapshotId,
                     unsigned switches, double elapsed_seconds,
                     std::vector<Tenant> &tenants)
{
    using bpred::JsonValue;
    JsonValue document = JsonValue::object();
    document["snapshot"] = bpred::u64(snapshotId);
    document["elapsed_seconds"] = elapsed_seconds;
    document["context_switches"] = bpred::u64(switches);
    JsonValue &byTenant = document["tenants"];
    byTenant = JsonValue::object();
    for (Tenant &tenant : tenants) {
        JsonValue node = JsonValue::object();
        node["slices"] = bpred::u64(tenant.slices);
        node["records_served"] = bpred::u64(tenant.at);
        node["records_total"] = bpred::u64(tenant.trace.size());
        const bpred::u64 scored =
            tenant.session->scoredConditionals();
        const bpred::u64 wrong = tenant.session->mispredictsSoFar();
        node["conditionals"] = scored;
        node["mispredicts"] = wrong;
        node["accuracy"] = scored > 0
            ? 1.0 - double(wrong) / double(scored)
            : 0.0;
        node["checkpoint_bytes"] =
            bpred::u64(tenant.checkpoint.size());
        node["save_latency"] = latencySummary(
            tenant.metrics.histogram("checkpoint.save_us"));
        node["restore_latency"] = latencySummary(
            tenant.metrics.histogram("checkpoint.restore_us"));
        // Session feed metrics and the raw latency histograms land
        // in the same per-tenant registry (SimOptions::metrics).
        node["metrics"] = tenant.metrics.toJson();
        byTenant[tenant.trace.name()] = std::move(node);
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::cerr << "warning: cannot write metrics snapshot to '"
                  << path << "'\n";
        return;
    }
    document.write(out, 2);
    out << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;

    const double scale =
        argc > 1 ? bpred::parseDouble(argv[1], "scale") : 0.1;
    const std::size_t quantum =
        argc > 2
        ? static_cast<std::size_t>(parseU64(argv[2], "quantum"))
        : 20000;
    const std::string spec = argc > 3 ? argv[3] : "egskew:12:11";
    const std::string metricsPath = argc > 4 ? argv[4] : "";

    if (scale <= 0.0 || quantum == 0) {
        std::cerr << "usage: prediction_server [scale] [quantum] "
                     "[spec] [metrics_out]\n";
        return 2;
    }

    try {
        auto predictor = makePredictor(spec);
        if (!predictor->supportsSnapshot()) {
            std::cerr << "error: '" << spec
                      << "' does not support snapshots; pick a "
                         "snapshot-capable scheme (e.g. gshare, "
                         "egskew, bimodal)\n";
            return 2;
        }

        std::cout << "Serving 3 tenants on one '"
                  << predictor->name() << "' (quantum " << quantum
                  << " records)\n";

        std::vector<Tenant> tenants;
        for (const char *benchmark : {"groff", "gs", "nroff"}) {
            Tenant tenant;
            tenant.trace = makeIbsTrace(benchmark, scale);
            tenants.push_back(std::move(tenant));
        }
        // Sessions bind to the shared predictor after the tenants
        // vector stops reallocating. Each session reports its
        // feed-phase metrics into its tenant's registry, next to
        // the server's own checkpoint latency histograms.
        for (Tenant &tenant : tenants) {
            SimOptions options;
            options.metrics = &tenant.metrics;
            tenant.session = std::make_unique<SimSession>(
                *predictor, options, tenant.trace.name());
        }

        // Round-robin scheduler: restore, serve one quantum,
        // checkpoint, move on. After every full round the metrics
        // snapshot (when requested) is rewritten, so an observer
        // sees request counts, accuracy and checkpoint latency
        // percentiles converge live.
        const ServerClock::time_point started = ServerClock::now();
        unsigned switches = 0;
        unsigned snapshotId = 0;
        for (bool any_ran = true; any_ran;) {
            any_ran = false;
            for (Tenant &tenant : tenants) {
                if (tenant.done()) {
                    continue;
                }
                if (tenant.slices == 0) {
                    // First slice: a tenant starts cold.
                    predictor->reset();
                } else {
                    const ServerClock::time_point t0 =
                        ServerClock::now();
                    std::istringstream in(tenant.checkpoint);
                    loadPredictorState(*predictor, in);
                    tenant.metrics
                        .histogram("checkpoint.restore_us")
                        .sample(elapsedUs(t0));
                }
                ++tenant.slices;
                ++switches;
                ++tenant.metrics.counter("server.requests");

                const std::size_t n = std::min(
                    quantum, tenant.trace.size() - tenant.at);
                tenant.session->feed(
                    tenant.trace.records().data() + tenant.at, n);
                tenant.at += n;

                const ServerClock::time_point t0 =
                    ServerClock::now();
                std::ostringstream out;
                savePredictorState(*predictor, out);
                tenant.checkpoint = out.str();
                tenant.metrics.histogram("checkpoint.save_us")
                    .sample(elapsedUs(t0));
                any_ran = true;
            }
            if (!metricsPath.empty() && any_ran) {
                writeMetricsSnapshot(
                    metricsPath, snapshotId++, switches,
                    std::chrono::duration<double>(
                        ServerClock::now() - started)
                        .count(),
                    tenants);
            }
        }

        // Every tenant must match a standalone run on a private
        // predictor bit for bit.
        bool isolated = true;
        TextTable table({"tenant", "records", "slices", "served",
                         "standalone", "checkpoint bytes"});
        for (Tenant &tenant : tenants) {
            const SimResult served = tenant.session->finish();

            auto reference = makePredictor(spec);
            const SimResult standalone =
                simulate(*reference, tenant.trace);

            table.row()
                .cell(tenant.trace.name())
                .cell(formatCount(tenant.trace.size()))
                .cell(static_cast<u64>(tenant.slices))
                .percentCell(served.mispredictPercent())
                .percentCell(standalone.mispredictPercent())
                .cell(tenant.checkpoint.size());

            if (served.mispredicts != standalone.mispredicts ||
                served.conditionals != standalone.conditionals) {
                std::cout << "ISOLATION FAILURE: "
                          << tenant.trace.name() << " served "
                          << served.mispredicts << "/"
                          << served.conditionals << " vs standalone "
                          << standalone.mispredicts << "/"
                          << standalone.conditionals << "\n";
                isolated = false;
            }
        }
        table.print(std::cout);

        if (!isolated) {
            return 1;
        }
        std::cout << "\n" << switches
                  << " context switches; every tenant matched its "
                     "standalone run exactly — checkpoints carry "
                     "the complete predictor state.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
