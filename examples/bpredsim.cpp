/**
 * @file
 * bpredsim: a command-line trace-driven branch-predictor simulator
 * over the full library.
 *
 * Usage:
 *   bpredsim [options] <predictor-spec> [<predictor-spec> ...]
 *
 * Options:
 *   --benchmark <name>   IBS-like preset (default: groff). Accepts
 *                        all eight names, incl. sdet / video_play.
 *   --trace <file.bpt>   simulate a binary trace file instead
 *   --scale <x>          preset trace scale (default 0.25)
 *   --window <n>         also print an n-branch timeline
 *   --cpi                translate results through the pipeline model
 *   --csv                emit CSV instead of an aligned table
 *
 * Examples:
 *   bpredsim gshare:14:12 egskew:12:11
 *   bpredsim --benchmark real_gcc --cpi gskewed:3:12:10:partial
 *   bpredsim --trace mytrace.bpt --window 50000 bimode:13:10:12
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/driver.hh"
#include "sim/factory.hh"
#include "sim/pipeline_model.hh"
#include "sim/timeline.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "trace/trace_io.hh"
#include "workloads/presets.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: bpredsim [options] <spec> [<spec> ...]\n"
        << "  --benchmark <name> | --trace <file.bpt>\n"
        << "  --scale <x>  --window <n>  --cpi  --csv\n\n"
        << bpred::predictorSpecHelp() << "\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;

    std::string benchmark = "groff";
    std::string trace_path;
    double scale = 0.25;
    u64 window = 0;
    bool with_cpi = false;
    bool csv = false;
    std::vector<std::string> specs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark") {
            benchmark = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--scale") {
            scale = parseDouble(next(), "--scale");
        } else if (arg == "--window") {
            window = parseU64(next(), "--window");
        } else if (arg == "--cpi") {
            with_cpi = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else {
            specs.push_back(arg);
        }
    }
    if (specs.empty()) {
        return usage();
    }

    try {
        const Trace trace = trace_path.empty()
            ? makeIbsTrace(benchmark, scale)
            : loadBinaryTrace(trace_path);
        const TraceStats stats = computeTraceStats(trace);
        std::cout << "trace '" << trace.name() << "': "
                  << formatCount(stats.dynamicConditional)
                  << " conditional branches, "
                  << formatCount(stats.staticConditional)
                  << " static sites\n";

        std::vector<std::string> headers = {"predictor", "Kbit",
                                            "mispredict"};
        if (with_cpi) {
            headers.push_back("CPI @12cy");
            headers.push_back("stall %");
        }
        TextTable table(headers);

        for (const std::string &spec : specs) {
            auto predictor = makePredictor(spec);
            const SimResult result = simulate(*predictor, trace);
            table.row()
                .cell(result.predictorName)
                .cell(result.storageBits / 1024)
                .percentCell(result.mispredictPercent());
            if (with_cpi) {
                const PipelineEstimate estimate =
                    estimatePipeline(result);
                table.cell(estimate.cpi, 4).percentCell(
                    estimate.stallFraction * 100.0);
            }
        }
        if (csv) {
            table.printCsv(std::cout);
        } else {
            table.print(std::cout);
        }

        if (window > 0) {
            for (const std::string &spec : specs) {
                auto predictor = makePredictor(spec);
                const TimelineResult timeline =
                    runTimeline(*predictor, trace, window);
                std::cout << "\ntimeline " << predictor->name()
                          << " (windows of " << formatCount(window)
                          << "):\n ";
                for (const double ratio : timeline.windows) {
                    std::cout << " "
                              << formatDouble(ratio * 100.0, 1);
                }
                std::cout << "\n";
            }
        }
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
