/**
 * @file
 * Trace utility: generate, convert and inspect branch traces.
 *
 * Subcommands:
 *   gen <benchmark> <scale> <out.bpt>   generate a preset trace
 *   info <trace.bpt>                    print summary statistics
 *   totext <trace.bpt>                  dump as text to stdout
 *   fromtext <name> <out.bpt>           read text from stdin
 *
 * The binary format is the compact "BPT1" delta encoding; the text
 * format is the human-editable one used in tests ("C <hexpc> T").
 */

#include <iostream>
#include <string>

#include "support/parse.hh"
#include "support/table.hh"
#include "trace/trace_io.hh"
#include "workloads/presets.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  trace_tool gen <benchmark> <scale> <out.bpt>\n"
        << "  trace_tool info <trace.bpt>\n"
        << "  trace_tool totext <trace.bpt>\n"
        << "  trace_tool fromtext <name> <out.bpt>   (text on stdin)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bpred;

    if (argc < 2) {
        return usage();
    }
    const std::string command = argv[1];

    try {
        if (command == "gen" && argc == 5) {
            const Trace trace =
                makeIbsTrace(argv[2],
                             parseDouble(argv[3], "scale"));
            saveBinaryTrace(argv[4], trace);
            std::cout << "wrote " << formatCount(trace.size())
                      << " records to " << argv[4] << "\n";
            return 0;
        }
        if (command == "info" && argc == 3) {
            const Trace trace = loadBinaryTrace(argv[2]);
            const TraceStats stats = computeTraceStats(trace);
            TextTable table({"metric", "value"});
            table.row().cell(std::string("name")).cell(trace.name());
            table.row()
                .cell(std::string("records"))
                .cell(formatCount(trace.size()));
            table.row()
                .cell(std::string("dynamic conditional"))
                .cell(formatCount(stats.dynamicConditional));
            table.row()
                .cell(std::string("static conditional"))
                .cell(formatCount(stats.staticConditional));
            table.row()
                .cell(std::string("dynamic unconditional"))
                .cell(formatCount(stats.dynamicUnconditional));
            table.row()
                .cell(std::string("taken ratio"))
                .percentCell(stats.takenRatio() * 100.0);
            table.row()
                .cell(std::string("dynamic/static"))
                .cell(stats.dynamicPerStatic(), 1);
            table.print(std::cout);
            return 0;
        }
        if (command == "totext" && argc == 3) {
            writeTextTrace(std::cout, loadBinaryTrace(argv[2]));
            return 0;
        }
        if (command == "fromtext" && argc == 4) {
            Trace trace = readTextTrace(std::cin, argv[2]);
            saveBinaryTrace(argv[3], trace);
            std::cout << "wrote " << formatCount(trace.size())
                      << " records to " << argv[3] << "\n";
            return 0;
        }
        return usage();
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
