/**
 * @file
 * Aliasing autopsy: a guided diagnosis of one workload with the
 * library's analysis tools.
 *
 * Walks through the questions a microarchitect would ask of a
 * misbehaving predictor, in order:
 *
 *   1. How bad is it, and is it warm-up or steady state? (timeline)
 *   2. How much of the loss is aliasing, and which kind? (3Cs)
 *   3. Is the aliasing hurting or harmless? (interference classes)
 *   4. WHERE is it happening? (conflict hotspots)
 *   5. What does the analytical model predict a fix is worth?
 *      (distance profile + formulas)
 *
 * Usage: aliasing_autopsy [benchmark] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "aliasing/hotspots.hh"
#include "aliasing/interference.hh"
#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "model/distance_profile.hh"
#include "model/formulas.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "sim/timeline.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;

    const std::string benchmark = argc > 1 ? argv[1] : "gs";
    const double scale =
        argc > 2 ? bpred::parseDouble(argv[2], "scale") : 0.25;
    constexpr unsigned indexBits = 12; // the 4K-entry patient
    constexpr unsigned historyBits = 8;

    try {
        const Trace trace = makeIbsTrace(benchmark, scale);
        std::cout << "Patient: gshare-4K-h8 on '" << benchmark
                  << "' (" << formatCount(trace.size())
                  << " records)\n";

        // 1. Timeline.
        printHeading(std::cout, "1. Timeline (is it warm-up?)");
        GSharePredictor patient(indexBits, historyBits);
        const TimelineResult timeline =
            runTimeline(patient, trace, 50'000);
        TextTable timeline_table({"window", "mispredict"});
        for (std::size_t i = 0; i < timeline.windows.size(); ++i) {
            timeline_table.row().cell(u64(i)).percentCell(
                timeline.windows[i] * 100.0);
        }
        timeline_table.print(std::cout);
        std::cout << "warm-up ends by window "
                  << timeline.warmupWindows(0.01)
                  << "; steady mean "
                  << formatDouble(timeline.mean() * 100.0)
                  << " %\n";

        // 2. Three-Cs decomposition.
        printHeading(std::cout, "2. Aliasing decomposition");
        const IndexFunction function{IndexKind::GShare, indexBits,
                                     historyBits};
        const ThreeCsResult three_c =
            measureThreeCs(trace, function);
        TextTable c_table({"component", "ratio"});
        c_table.row().cell(std::string("total aliasing"))
            .percentCell(three_c.totalAliasing * 100.0);
        c_table.row().cell(std::string("compulsory"))
            .percentCell(three_c.compulsory * 100.0);
        c_table.row().cell(std::string("capacity"))
            .percentCell(three_c.capacity() * 100.0);
        c_table.row().cell(std::string("conflict"))
            .percentCell(three_c.conflict() * 100.0);
        c_table.print(std::cout);

        // 3. Interference classes.
        printHeading(std::cout, "3. Is the aliasing destructive?");
        const InterferenceResult interference =
            classifyInterference(trace, function);
        std::cout << "destructive "
                  << formatDouble(interference.destructiveRatio() *
                                  100.0)
                  << " % of branches, constructive "
                  << formatDouble(interference.constructiveRatio() *
                                  100.0)
                  << " % — ratio "
                  << formatDouble(
                         interference.constructive == 0
                             ? 0.0
                             : static_cast<double>(
                                   interference.destructive) /
                                 static_cast<double>(
                                     interference.constructive),
                         1)
                  << ":1\n";

        // 4. Hotspots.
        printHeading(std::cout, "4. Where? (top conflict entries)");
        const auto hotspots =
            findConflictHotspots(trace, function, 5);
        TextTable hot_table({"entry", "conflicts", "users",
                             "top user refs", "2nd user refs"});
        for (const ConflictHotspot &hotspot : hotspots) {
            hot_table.row()
                .cell(hotspot.index)
                .cell(hotspot.conflicts)
                .cell(hotspot.distinctUsers)
                .cell(hotspot.topUserCount)
                .cell(hotspot.secondUserCount);
        }
        hot_table.print(std::cout);

        // 5. Model verdict.
        printHeading(std::cout,
                     "5. What would a skewed organization buy?");
        const DistanceProfile profile =
            profileDistances(trace, historyBits);
        const double p_bank =
            profile.expectedAliasingProbability(u64(1) << indexBits);
        std::cout << "median last-use distance "
                  << profile.distances.percentile(0.5)
                  << "; expected per-bank aliasing p = "
                  << formatDouble(p_bank, 4) << "\n"
                  << "model: 1-bank overhead ~ "
                  << formatDouble(destructiveProbabilityDirectMapped(
                                      p_bank, 0.5) *
                                      100.0)
                  << " %, 3-bank skewed ~ "
                  << formatDouble(
                         destructiveProbabilitySkewed3(p_bank, 0.5) *
                             100.0)
                  << " %\n";

        SkewedPredictor fix(3, indexBits, historyBits,
                            UpdatePolicy::Partial);
        const SimResult fixed = simulate(fix, trace);
        GSharePredictor again(indexBits, historyBits);
        const SimResult baseline = simulate(again, trace);
        std::cout << "measured: gshare-4K "
                  << formatDouble(baseline.mispredictPercent())
                  << " % -> gskewed-3x4K "
                  << formatDouble(fixed.mispredictPercent())
                  << " %\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
