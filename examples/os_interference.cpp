/**
 * @file
 * OS interference study: how kernel/multiprocess activity degrades
 * a global-history predictor, and how much of the damage skewing
 * repairs.
 *
 * The paper's motivation leans on Gloy et al. and Uhlig et al.: OS
 * and multiprogrammed workloads blow up the (address, history)
 * working set and aliasing. This example rebuilds one benchmark
 * with a sweep of kernel shares and reports misprediction and
 * conflict-aliasing figures side by side for gshare vs gskewed.
 *
 * Usage: os_interference [scale]
 */

#include <cstdlib>
#include <iostream>

#include "aliasing/three_c.hh"
#include "core/skewed_predictor.hh"
#include "predictors/gshare.hh"
#include "sim/driver.hh"
#include "support/parse.hh"
#include "support/table.hh"
#include "workloads/presets.hh"
#include "workloads/process_mix.hh"

int
main(int argc, char **argv)
{
    using namespace bpred;

    const double scale =
        argc > 1 ? bpred::parseDouble(argv[1], "scale") : 0.1;

    try {
        TextTable table({"kernel share", "conflict alias",
                         "capacity alias", "gshare-4K",
                         "gskewed-3x1K"});

        for (const double share : {0.0, 0.1, 0.2, 0.35, 0.5}) {
            WorkloadParams params = ibsPreset("verilog", scale);
            params.kernelShare = share;
            const Trace trace = generateWorkload(params);

            IndexFunction function{IndexKind::GShare, 12, 8};
            const ThreeCsResult aliasing =
                measureThreeCs(trace, function);

            GSharePredictor gshare(12, 8);
            SkewedPredictor gskewed(3, 10, 8,
                                    UpdatePolicy::Partial);
            const SimResult share_result =
                simulate(gshare, trace);
            const SimResult skew_result =
                simulate(gskewed, trace);

            table.row()
                .percentCell(share * 100.0, 0)
                .percentCell(aliasing.conflict() * 100.0)
                .percentCell(aliasing.capacity() * 100.0)
                .percentCell(share_result.mispredictPercent())
                .percentCell(skew_result.mispredictPercent());
        }

        std::cout << "verilog-like workload, varying kernel share "
                     "(scale "
                  << scale << ")\n";
        table.print(std::cout);
        std::cout << "\nMore OS activity -> more aliasing; the "
                     "skewed organization absorbs the conflict "
                     "component.\n";
        return 0;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
